//! Crossbar-aligned group-lasso regularization (paper §3.2, Eq. 4–6).
//!
//! The training objective becomes
//! `E(W) = E_D(W) + λ·(Σ_g ||W_g^(r)|| + Σ_g ||W_g^(c)||)`
//! where the groups are the crossbar rows and columns produced by tiling
//! each multi-crossbar weight matrix ([`scissor_ncs::GroupPartition`]).
//! The subgradient contribution per weight is `λ·w/||W_i^(r)|| +
//! λ·w/||W_j^(c)||` (Eq. 6), added to the data gradient before each SGD
//! step.

use scissor_ncs::{CrossbarSpec, GroupPartition, Tiling};
use scissor_nn::Network;

use crate::error::{PruneError, Result};

/// Group norms below this are treated as zero in the subgradient (the
/// subdifferential at 0 is taken as 0, the standard choice).
const NORM_FLOOR: f64 = 1e-12;

/// One regularized parameter: its name, crossbar tiling and group partition.
#[derive(Debug, Clone)]
pub struct RegEntry {
    param: String,
    tiling: Tiling,
    partition: GroupPartition,
}

impl RegEntry {
    /// Parameter name (e.g. `"fc1.u"`).
    pub fn param(&self) -> &str {
        &self.param
    }

    /// The crossbar tiling the groups derive from.
    pub fn tiling(&self) -> &Tiling {
        &self.tiling
    }

    /// The row/column group partition.
    pub fn partition(&self) -> &GroupPartition {
        &self.partition
    }
}

/// The group-lasso regularizer of Eq. (4), applied to a set of registered
/// network parameters.
#[derive(Debug, Clone)]
pub struct GroupLassoRegularizer {
    entries: Vec<RegEntry>,
    lambda: f32,
}

impl GroupLassoRegularizer {
    /// Creates an empty regularizer with strength `lambda`.
    pub fn new(lambda: f32) -> Self {
        Self { entries: Vec::new(), lambda }
    }

    /// Registers one parameter with an explicit tiling.
    pub fn register(&mut self, param: impl Into<String>, tiling: Tiling) {
        let partition = GroupPartition::from_tiling(&tiling);
        self.entries.push(RegEntry { param: param.into(), tiling, partition });
    }

    /// Registers every weight parameter (`*.w`, `*.u`, `*.v`) whose crossbar
    /// tiling needs more than one crossbar — the paper's rule: "no group
    /// Lasso regularization is enforced on those small matrices" that fit a
    /// single MBC (§4.2, Table 3 footnote).
    ///
    /// # Errors
    ///
    /// Propagates tiling failures (empty parameters).
    pub fn auto_register(net: &Network, spec: &CrossbarSpec, lambda: f32) -> Result<Self> {
        let mut reg = Self::new(lambda);
        for p in net.params() {
            let name = p.name();
            let is_weight = name.ends_with(".w") || name.ends_with(".u") || name.ends_with(".v");
            if !is_weight {
                continue;
            }
            let (n, k) = p.value().shape();
            let tiling = Tiling::plan(n, k, spec)?;
            if tiling.crossbar_count() > 1 {
                reg.register(name.to_string(), tiling);
            }
        }
        Ok(reg)
    }

    /// Registered entries.
    pub fn entries(&self) -> &[RegEntry] {
        &self.entries
    }

    /// Names of the registered parameters.
    pub fn entry_names(&self) -> Vec<String> {
        self.entries.iter().map(|e| e.param.clone()).collect()
    }

    /// Regularization strength λ.
    pub fn lambda(&self) -> f32 {
        self.lambda
    }

    /// Adjusts λ (used by sweeps over the accuracy/congestion trade-off).
    pub fn set_lambda(&mut self, lambda: f32) {
        self.lambda = lambda;
    }

    fn entry_value<'a>(
        &self,
        net: &'a Network,
        entry: &RegEntry,
    ) -> Result<&'a scissor_linalg::Matrix> {
        let p = net
            .param(&entry.param)
            .ok_or_else(|| PruneError::UnknownParam { name: entry.param.clone() })?;
        if p.value().shape() != entry.partition.shape() {
            return Err(PruneError::StaleRegistration {
                name: entry.param.clone(),
                registered: entry.partition.shape(),
                found: p.value().shape(),
            });
        }
        Ok(p.value())
    }

    /// The penalty term `λ·Σ(||row groups|| + ||col groups||)` (Eq. 4).
    ///
    /// # Errors
    ///
    /// Fails on unknown parameters or stale registrations.
    pub fn penalty(&self, net: &Network) -> Result<f64> {
        let mut total = 0.0;
        for entry in &self.entries {
            let w = self.entry_value(net, entry)?;
            total += entry.partition.group_lasso_penalty(w);
        }
        Ok(total * self.lambda as f64)
    }

    /// Adds the Eq. (6) subgradient `λw/||W_i^(r)|| + λw/||W_j^(c)||` to the
    /// gradient of every registered parameter. Call after `backward` and
    /// before the optimizer step.
    ///
    /// # Errors
    ///
    /// Fails on unknown parameters or stale registrations.
    pub fn accumulate_grads(&self, net: &mut Network) -> Result<()> {
        let lambda = self.lambda;
        for entry in &self.entries {
            // Validate against the immutable view first.
            self.entry_value(net, entry)?;
            let param = net
                .param_mut(&entry.param)
                .ok_or_else(|| PruneError::UnknownParam { name: entry.param.clone() })?;
            let cols = param.value().cols();
            // Row groups.
            for g in entry.partition.row_groups() {
                let norm = g.norm(param.value());
                if norm <= NORM_FLOOR {
                    continue;
                }
                let scale = lambda / norm as f32;
                let indices: Vec<usize> = g.indices(cols).collect();
                for i in indices {
                    let w = param.value().as_slice()[i];
                    param.grad_mut().as_mut_slice()[i] += scale * w;
                }
            }
            // Column groups.
            for g in entry.partition.col_groups() {
                let norm = g.norm(param.value());
                if norm <= NORM_FLOOR {
                    continue;
                }
                let scale = lambda / norm as f32;
                let indices: Vec<usize> = g.indices(cols).collect();
                for i in indices {
                    let w = param.value().as_slice()[i];
                    param.grad_mut().as_mut_slice()[i] += scale * w;
                }
            }
        }
        Ok(())
    }

    /// Fraction of groups (row + column) whose norm is at or below
    /// `threshold`, per entry — the live "% deleted routing wires" of Fig. 5.
    ///
    /// # Errors
    ///
    /// Fails on unknown parameters or stale registrations.
    pub fn deleted_fraction(&self, net: &Network, threshold: f64) -> Result<Vec<(String, f64)>> {
        let mut out = Vec::with_capacity(self.entries.len());
        for entry in &self.entries {
            let w = self.entry_value(net, entry)?;
            let row_norms = entry.partition.row_group_norms(w);
            let col_norms = entry.partition.col_group_norms(w);
            let total = row_norms.len() + col_norms.len();
            let deleted = row_norms.iter().chain(&col_norms).filter(|&&n| n <= threshold).count();
            out.push((
                entry.param.clone(),
                if total == 0 { 0.0 } else { deleted as f64 / total as f64 },
            ));
        }
        Ok(out)
    }

    /// Zeroes every group whose norm is at or below `threshold` in every
    /// registered parameter (the deletion step). Returns per-entry
    /// `(zeroed_row_groups, zeroed_col_groups)`.
    ///
    /// # Errors
    ///
    /// Fails on unknown parameters or stale registrations.
    pub fn delete_small_groups(
        &self,
        net: &mut Network,
        threshold: f64,
    ) -> Result<Vec<(String, usize, usize)>> {
        let mut out = Vec::with_capacity(self.entries.len());
        for entry in &self.entries {
            self.entry_value(net, entry)?;
            let param = net
                .param_mut(&entry.param)
                .ok_or_else(|| PruneError::UnknownParam { name: entry.param.clone() })?;
            let (zr, zc) = entry.partition.zero_small_groups(param.value_mut(), threshold);
            out.push((entry.param.clone(), zr, zc));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use scissor_linalg::Matrix;
    use scissor_nn::{NetworkBuilder, Phase, Tensor4};

    fn wide_net() -> Network {
        let mut rng = StdRng::seed_from_u64(5);
        // fc1.w is 128×16 → with max 8×8 crossbars it tiles 16×2 = 32 blocks.
        NetworkBuilder::new((2, 8, 8))
            .linear("fc1", 16, &mut rng)
            .relu()
            .linear("fc2", 4, &mut rng)
            .build()
    }

    fn small_spec() -> CrossbarSpec {
        CrossbarSpec::default().with_max_size(8, 8).unwrap()
    }

    #[test]
    fn auto_register_only_multi_crossbar_params() {
        let net = wide_net();
        let reg = GroupLassoRegularizer::auto_register(&net, &small_spec(), 0.01).unwrap();
        let names = reg.entry_names();
        // fc1.w (128×16) needs 32 crossbars; fc2.w (16×4) needs 2 (16 > 8).
        assert!(names.contains(&"fc1.w".to_string()));
        assert!(names.contains(&"fc2.w".to_string()));
        // Biases are never registered.
        assert!(!names.iter().any(|n| n.ends_with(".bias")));

        // With the default 64×64 spec, a net whose weights all fit inside
        // one crossbar registers nothing.
        let mut rng = StdRng::seed_from_u64(6);
        let small = NetworkBuilder::new((1, 8, 8)).linear("fc", 10, &mut rng).build();
        let reg64 =
            GroupLassoRegularizer::auto_register(&small, &CrossbarSpec::default(), 0.01).unwrap();
        assert!(reg64.entries().is_empty());
    }

    #[test]
    fn penalty_matches_hand_computation() {
        let net = wide_net();
        let mut reg = GroupLassoRegularizer::new(2.0);
        let tiling = Tiling::plan(128, 16, &small_spec()).unwrap();
        reg.register("fc1.w", tiling);
        let penalty = reg.penalty(&net).unwrap();
        let w = net.param("fc1.w").unwrap().value();
        let partition = GroupPartition::from_tiling(&Tiling::plan(128, 16, &small_spec()).unwrap());
        let expect = 2.0 * partition.group_lasso_penalty(w);
        assert!((penalty - expect).abs() < 1e-9);
    }

    #[test]
    fn gradient_matches_finite_difference_of_penalty() {
        let mut net = wide_net();
        let reg = GroupLassoRegularizer::auto_register(&net, &small_spec(), 0.05).unwrap();
        net.zero_grads();
        reg.accumulate_grads(&mut net).unwrap();
        let analytic = net.param("fc1.w").unwrap().grad().clone();

        // Probe a few coordinates of fc1.w numerically.
        let eps = 1e-3_f32;
        for idx in [0usize, 77, 501, 1333, 2047] {
            let orig = net.param("fc1.w").unwrap().value().as_slice()[idx];
            net.param_mut("fc1.w").unwrap().value_mut().as_mut_slice()[idx] = orig + eps;
            let lp = reg.penalty(&net).unwrap();
            net.param_mut("fc1.w").unwrap().value_mut().as_mut_slice()[idx] = orig - eps;
            let lm = reg.penalty(&net).unwrap();
            net.param_mut("fc1.w").unwrap().value_mut().as_mut_slice()[idx] = orig;
            let numeric = (lp - lm) / (2.0 * eps as f64);
            let a = analytic.as_slice()[idx] as f64;
            assert!((a - numeric).abs() < 1e-3, "idx {idx}: analytic {a} vs numeric {numeric}");
        }
    }

    #[test]
    fn zero_group_subgradient_is_zero() {
        let mut net = wide_net();
        // Zero the first crossbar row group entirely.
        {
            let p = net.param_mut("fc1.w").unwrap();
            for j in 0..8 {
                p.value_mut()[(0, j)] = 0.0;
            }
        }
        let mut reg = GroupLassoRegularizer::new(1.0);
        reg.register("fc1.w", Tiling::plan(128, 16, &small_spec()).unwrap());
        net.zero_grads();
        reg.accumulate_grads(&mut net).unwrap();
        let g = net.param("fc1.w").unwrap().grad();
        // Gradient on the zeroed row segment comes only from column groups;
        // since w=0 there, the contribution λ·w/||·|| is 0 as well.
        for j in 0..8 {
            assert_eq!(g[(0, j)], 0.0);
        }
    }

    #[test]
    fn training_with_group_lasso_shrinks_group_norms() {
        let mut net = wide_net();
        let reg = GroupLassoRegularizer::auto_register(&net, &small_spec(), 0.05).unwrap();
        let before = reg.penalty(&net).unwrap();
        // Pure-regularizer "training": no data gradient, just shrinkage.
        let sgd = scissor_nn::Sgd::new(0.05);
        let x = Tensor4::zeros(2, 2, 8, 8);
        for it in 0..150 {
            let out = net.forward(&x, Phase::Train);
            // zero data gradient
            let zero = Tensor4::zeros(out.batch(), out.channels(), out.height(), out.width());
            net.backward(&zero);
            reg.accumulate_grads(&mut net).unwrap();
            sgd.step(&mut net.params_mut(), it);
        }
        let after = reg.penalty(&net).unwrap();
        assert!(after < before * 0.5, "penalty should shrink: {before} → {after}");
        // Some groups should now be deletable at a small threshold.
        let frac = reg.deleted_fraction(&net, 1e-2).unwrap();
        assert!(frac.iter().any(|(_, f)| *f > 0.0), "no deletable groups after shrinkage");
    }

    #[test]
    fn delete_small_groups_zeroes_weights() {
        let mut net = wide_net();
        let mut reg = GroupLassoRegularizer::new(1.0);
        reg.register("fc1.w", Tiling::plan(128, 16, &small_spec()).unwrap());
        // Scale fc1.w tiny so everything deletes.
        net.param_mut("fc1.w").unwrap().value_mut().map_inplace(|v| v * 1e-6);
        let report = reg.delete_small_groups(&mut net, 1e-3).unwrap();
        assert_eq!(report.len(), 1);
        let (_, zr, zc) = report[0];
        assert_eq!(zr, 128 * 2); // 16×2 grid of 8×8 blocks → 32 blocks × 8 rows
        assert_eq!(zc, 32 * 8);
        assert_eq!(net.param("fc1.w").unwrap().value().frobenius_norm(), 0.0);
    }

    #[test]
    fn stale_registration_detected() {
        let mut net = wide_net();
        let mut reg = GroupLassoRegularizer::new(1.0);
        reg.register("fc1.w", Tiling::plan(128, 16, &small_spec()).unwrap());
        // Shrink the parameter behind the regularizer's back.
        net.param_mut("fc1.w").unwrap().replace_value(Matrix::zeros(64, 16));
        assert!(matches!(reg.penalty(&net), Err(PruneError::StaleRegistration { .. })));
    }

    #[test]
    fn unknown_param_detected() {
        let net = wide_net();
        let mut reg = GroupLassoRegularizer::new(1.0);
        reg.register("ghost.w", Tiling::plan(8, 8, &small_spec()).unwrap());
        assert!(matches!(reg.penalty(&net), Err(PruneError::UnknownParam { .. })));
    }
}
