//! Error type for the group-connection-deletion crate.

use std::error::Error;
use std::fmt;

use scissor_ncs::NcsError;

/// Errors produced by `scissor-prune` operations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PruneError {
    /// The named parameter does not exist in the network.
    UnknownParam {
        /// Requested parameter name.
        name: String,
    },
    /// A parameter's shape no longer matches its registered partition
    /// (e.g. the layer was re-clipped after registration).
    StaleRegistration {
        /// Parameter name.
        name: String,
        /// Shape at registration time.
        registered: (usize, usize),
        /// Shape found now.
        found: (usize, usize),
    },
    /// Hardware-model failure (tiling, groups).
    Ncs(NcsError),
}

impl fmt::Display for PruneError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PruneError::UnknownParam { name } => write!(f, "unknown parameter `{name}`"),
            PruneError::StaleRegistration { name, registered, found } => write!(
                f,
                "partition for `{name}` registered at {}x{} but parameter is now {}x{}",
                registered.0, registered.1, found.0, found.1
            ),
            PruneError::Ncs(e) => write!(f, "hardware model failure: {e}"),
        }
    }
}

impl Error for PruneError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PruneError::Ncs(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NcsError> for PruneError {
    fn from(e: NcsError) -> Self {
        PruneError::Ncs(e)
    }
}

/// Convenience alias for results in this crate.
pub type Result<T> = std::result::Result<T, PruneError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages() {
        assert!(PruneError::UnknownParam { name: "x.u".into() }.to_string().contains("x.u"));
        let e =
            PruneError::StaleRegistration { name: "a".into(), registered: (8, 4), found: (8, 2) };
        assert!(e.to_string().contains("8x4"));
        let e = PruneError::from(NcsError::EmptyMatrix { shape: (0, 1) });
        assert!(e.source().is_some());
    }
}
