//! Sparsity masks for fine-tuning after deletion.
//!
//! Once groups are deleted their weights must *stay* zero while the network
//! fine-tunes (a deleted routing wire cannot carry current). A [`MaskSet`]
//! captures the surviving-weight pattern and re-applies it to gradients and
//! values around each optimizer step.

use scissor_linalg::Matrix;
use scissor_nn::{CompiledNet, Network};

use crate::error::{PruneError, Result};

/// Per-parameter keep masks (1 = trainable, 0 = deleted).
#[derive(Debug, Clone)]
pub struct MaskSet {
    masks: Vec<(String, Matrix)>,
}

impl MaskSet {
    /// An empty mask set (no-op).
    pub fn empty() -> Self {
        Self { masks: Vec::new() }
    }

    /// Captures the nonzero pattern of the named parameters: weights that
    /// are exactly zero become masked out.
    ///
    /// # Errors
    ///
    /// Returns [`PruneError::UnknownParam`] if a name is missing.
    pub fn capture_nonzero(net: &Network, params: &[String]) -> Result<Self> {
        let mut masks = Vec::with_capacity(params.len());
        for name in params {
            let p =
                net.param(name).ok_or_else(|| PruneError::UnknownParam { name: name.clone() })?;
            let mask = p.value().map(|v| if v == 0.0 { 0.0 } else { 1.0 });
            masks.push((name.clone(), mask));
        }
        Ok(Self { masks })
    }

    /// Number of masked parameters.
    pub fn len(&self) -> usize {
        self.masks.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.masks.is_empty()
    }

    /// The raw `(param name, keep mask)` pairs.
    pub fn masks(&self) -> &[(String, Matrix)] {
        &self.masks
    }

    /// Pre-applies every deletion mask onto a compiled serving plan,
    /// pinning deleted connections to exact zeros in the frozen weights.
    ///
    /// Numerically a no-op when the plan was compiled from the network the
    /// masks were captured on (deletion already zeroed those weights); it
    /// guards plans compiled from checkpoints that were stored before
    /// masking.
    ///
    /// # Errors
    ///
    /// Returns [`PruneError::UnknownParam`] if the plan does not own one of
    /// the masked parameters, and [`PruneError::StaleRegistration`] when a
    /// mask's shape no longer matches its frozen parameter (e.g. the layer
    /// was re-clipped after the masks were captured).
    pub fn apply_to_compiled(&self, plan: &mut CompiledNet) -> Result<()> {
        use scissor_nn::NnError;
        for (name, mask) in &self.masks {
            plan.apply_mask(name, mask).map_err(|e| match e {
                NnError::StateShapeMismatch { name, stored, expected } => {
                    PruneError::StaleRegistration { name, registered: stored, found: expected }
                }
                _ => PruneError::UnknownParam { name: name.clone() },
            })?;
        }
        Ok(())
    }

    /// `(param, kept fraction)` pairs.
    pub fn keep_fractions(&self) -> Vec<(String, f64)> {
        self.masks
            .iter()
            .map(|(n, m)| {
                let kept = m.as_slice().iter().filter(|&&v| v != 0.0).count();
                (n.clone(), if m.is_empty() { 0.0 } else { kept as f64 / m.len() as f64 })
            })
            .collect()
    }

    /// Multiplies each masked parameter's gradient by its mask.
    ///
    /// # Errors
    ///
    /// Returns [`PruneError::UnknownParam`] on missing parameters.
    pub fn apply_to_grads(&self, net: &mut Network) -> Result<()> {
        for (name, mask) in &self.masks {
            let p = net
                .param_mut(name)
                .ok_or_else(|| PruneError::UnknownParam { name: name.clone() })?;
            for (g, &m) in p.grad_mut().as_mut_slice().iter_mut().zip(mask.as_slice()) {
                *g *= m;
            }
        }
        Ok(())
    }

    /// Re-zeroes masked weights (guards against momentum drift).
    ///
    /// # Errors
    ///
    /// Returns [`PruneError::UnknownParam`] on missing parameters.
    pub fn apply_to_values(&self, net: &mut Network) -> Result<()> {
        for (name, mask) in &self.masks {
            let p = net
                .param_mut(name)
                .ok_or_else(|| PruneError::UnknownParam { name: name.clone() })?;
            for (w, &m) in p.value_mut().as_mut_slice().iter_mut().zip(mask.as_slice()) {
                *w *= m;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use scissor_nn::{NetworkBuilder, Phase, Sgd, Tensor4};

    fn net() -> Network {
        let mut rng = StdRng::seed_from_u64(1);
        NetworkBuilder::new((1, 2, 2)).linear("fc", 3, &mut rng).build()
    }

    #[test]
    fn capture_reflects_zeros() {
        let mut n = net();
        n.param_mut("fc.w").unwrap().value_mut().map_inplace(|_| 1.0);
        n.param_mut("fc.w").unwrap().value_mut()[(0, 0)] = 0.0;
        let masks = MaskSet::capture_nonzero(&n, &["fc.w".into()]).unwrap();
        let fracs = masks.keep_fractions();
        assert_eq!(fracs[0].0, "fc.w");
        assert!((fracs[0].1 - 11.0 / 12.0).abs() < 1e-9);
        assert_eq!(masks.len(), 1);
        assert!(!masks.is_empty());
    }

    #[test]
    fn masked_weights_stay_zero_through_training() {
        let mut n = net();
        // Delete one weight, capture, then train hard.
        n.param_mut("fc.w").unwrap().value_mut()[(2, 1)] = 0.0;
        let masks = MaskSet::capture_nonzero(&n, &["fc.w".into()]).unwrap();
        let sgd = Sgd::with_momentum(0.1);
        let x = Tensor4::from_vec(4, 1, 2, 2, (0..16).map(|i| (i % 5) as f32 - 2.0).collect());
        let labels = [0usize, 1, 2, 0];
        for it in 0..20 {
            let logits = n.forward(&x, Phase::Train);
            let loss = scissor_nn::SoftmaxCrossEntropy::new();
            let out = loss.forward(&logits, &labels);
            n.backward(&loss.backward(&out.probs, &labels));
            masks.apply_to_grads(&mut n).unwrap();
            sgd.step(&mut n.params_mut(), it);
            masks.apply_to_values(&mut n).unwrap();
        }
        assert_eq!(n.param("fc.w").unwrap().value()[(2, 1)], 0.0);
        // Other weights moved.
        assert!(n.param("fc.w").unwrap().value().frobenius_norm() > 0.0);
    }

    #[test]
    fn unknown_param_is_error() {
        let n = net();
        assert!(MaskSet::capture_nonzero(&n, &["ghost.w".into()]).is_err());
        let masks = MaskSet { masks: vec![("ghost.w".into(), Matrix::zeros(1, 1))] };
        let mut n = net();
        assert!(masks.apply_to_grads(&mut n).is_err());
        assert!(masks.apply_to_values(&mut n).is_err());
    }

    #[test]
    fn masks_pre_apply_onto_compiled_plans() {
        let mut n = net();
        n.param_mut("fc.w").unwrap().value_mut().map_inplace(|_| 0.5);
        n.param_mut("fc.w").unwrap().value_mut()[(1, 2)] = 0.0;
        let masks = MaskSet::capture_nonzero(&n, &["fc.w".into()]).unwrap();
        let mut plan = n.compile().unwrap();
        // Compiled from the masked network: applying the masks is a no-op,
        // so the serving logits stay bitwise identical to the eval forward.
        masks.apply_to_compiled(&mut plan).unwrap();
        let x = Tensor4::from_vec(2, 1, 2, 2, (0..8).map(|i| i as f32 * 0.3 - 1.0).collect());
        assert_eq!(plan.infer(&x).as_slice(), n.forward(&x, Phase::Eval).as_slice());
        // A plan from an unmasked checkpoint gets its zeros pinned.
        let mut unmasked = net();
        unmasked.param_mut("fc.w").unwrap().value_mut().map_inplace(|_| 0.5);
        let mut stale_plan = unmasked.compile().unwrap();
        masks.apply_to_compiled(&mut stale_plan).unwrap();
        let y = stale_plan.infer(&x);
        assert_ne!(y.as_slice(), unmasked.forward(&x, Phase::Eval).as_slice());
        // Unknown parameter surfaces as a prune error.
        let ghost = MaskSet { masks: vec![("ghost.w".into(), Matrix::zeros(1, 1))] };
        assert!(matches!(ghost.apply_to_compiled(&mut plan), Err(PruneError::UnknownParam { .. })));
        // A right-named mask of the wrong shape is stale, not unknown.
        let stale = MaskSet { masks: vec![("fc.w".into(), Matrix::zeros(1, 1))] };
        assert!(matches!(
            stale.apply_to_compiled(&mut plan),
            Err(PruneError::StaleRegistration { .. })
        ));
    }

    #[test]
    fn empty_set_is_noop() {
        let mut n = net();
        let before = n.state_dict();
        MaskSet::empty().apply_to_values(&mut n).unwrap();
        assert_eq!(before, n.state_dict());
    }
}
