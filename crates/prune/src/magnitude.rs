//! Unstructured magnitude pruning — the "traditional sparse neural
//! networks" the paper argues against in §3.2.
//!
//! Magnitude pruning reaches high sparsity, but its zeros land randomly
//! across crossbars: a routing wire survives as long as *one* weight in its
//! row/column group is nonzero, so almost no wires get deleted. The
//! `ablation_unstructured` bench quantifies this contrast.

use scissor_nn::Network;

use crate::error::{PruneError, Result};
use crate::masks::MaskSet;

/// Zeroes the smallest-magnitude `sparsity` fraction of each named
/// parameter and returns the surviving-weight masks.
///
/// # Errors
///
/// Returns [`PruneError::UnknownParam`] on missing parameters.
///
/// # Panics
///
/// Panics if `sparsity` is outside `[0, 1]`.
pub fn magnitude_prune(net: &mut Network, params: &[String], sparsity: f64) -> Result<MaskSet> {
    assert!((0.0..=1.0).contains(&sparsity), "sparsity must be in [0, 1]");
    for name in params {
        let p =
            net.param_mut(name).ok_or_else(|| PruneError::UnknownParam { name: name.clone() })?;
        let len = p.value().len();
        let kill = ((len as f64) * sparsity).round() as usize;
        if kill == 0 {
            continue;
        }
        // Find the magnitude threshold via sorting a copy.
        let mut magnitudes: Vec<f32> = p.value().as_slice().iter().map(|v| v.abs()).collect();
        magnitudes.sort_by(|a, b| a.partial_cmp(b).expect("finite weights"));
        let threshold = magnitudes[kill.min(len) - 1];
        let mut killed = 0usize;
        for w in p.value_mut().as_mut_slice() {
            // `<=` with a budget guard so ties do not overshoot the target.
            if killed < kill && w.abs() <= threshold {
                *w = 0.0;
                killed += 1;
            }
        }
    }
    MaskSet::capture_nonzero(net, params)
}

/// Actual zero-fraction of each named parameter.
///
/// # Errors
///
/// Returns [`PruneError::UnknownParam`] on missing parameters.
pub fn sparsity_of(net: &Network, params: &[String]) -> Result<Vec<(String, f64)>> {
    params
        .iter()
        .map(|name| {
            let p =
                net.param(name).ok_or_else(|| PruneError::UnknownParam { name: name.clone() })?;
            let zeros = p.value().as_slice().iter().filter(|&&v| v == 0.0).count();
            let len = p.value().len().max(1);
            Ok((name.clone(), zeros as f64 / len as f64))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use scissor_ncs::{CrossbarSpec, RoutingAnalysis, Tiling};
    use scissor_nn::NetworkBuilder;

    fn net() -> Network {
        let mut rng = StdRng::seed_from_u64(2);
        NetworkBuilder::new((2, 8, 8)).linear("fc1", 16, &mut rng).build()
    }

    #[test]
    fn prunes_to_requested_sparsity() {
        let mut n = net();
        magnitude_prune(&mut n, &["fc1.w".into()], 0.7).unwrap();
        let s = sparsity_of(&n, &["fc1.w".into()]).unwrap();
        assert!((s[0].1 - 0.7).abs() < 0.02, "sparsity {} != 0.7", s[0].1);
    }

    #[test]
    fn keeps_largest_weights() {
        let mut n = net();
        // Plant one huge weight; it must survive 90% pruning.
        n.param_mut("fc1.w").unwrap().value_mut()[(0, 0)] = 100.0;
        magnitude_prune(&mut n, &["fc1.w".into()], 0.9).unwrap();
        assert_eq!(n.param("fc1.w").unwrap().value()[(0, 0)], 100.0);
    }

    #[test]
    fn unstructured_sparsity_preserves_routing_wires() {
        // The paper's §3.2 argument, reproduced: even 80% unstructured
        // sparsity deletes almost no routing wires.
        let mut n = net();
        magnitude_prune(&mut n, &["fc1.w".into()], 0.8).unwrap();
        let spec = CrossbarSpec::default().with_max_size(16, 16).unwrap();
        let tiling = Tiling::plan(128, 16, &spec).unwrap();
        let w = n.param("fc1.w").unwrap().value();
        let analysis = RoutingAnalysis::analyze("fc1.w", w, &tiling, 0.0).unwrap();
        assert!(
            analysis.remained_wire_fraction() > 0.8,
            "random sparsity should keep most wires, kept {}",
            analysis.remained_wire_fraction()
        );
    }

    #[test]
    fn zero_sparsity_is_noop_and_full_sparsity_kills_all() {
        let mut n = net();
        let before = n.param("fc1.w").unwrap().value().clone();
        magnitude_prune(&mut n, &["fc1.w".into()], 0.0).unwrap();
        assert_eq!(n.param("fc1.w").unwrap().value(), &before);
        magnitude_prune(&mut n, &["fc1.w".into()], 1.0).unwrap();
        assert_eq!(n.param("fc1.w").unwrap().value().frobenius_norm(), 0.0);
    }

    #[test]
    fn unknown_param_is_error() {
        let mut n = net();
        assert!(magnitude_prune(&mut n, &["ghost".into()], 0.5).is_err());
        assert!(sparsity_of(&n, &["ghost".into()]).is_err());
    }
}
