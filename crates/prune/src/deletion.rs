//! Group connection deletion — step 2 of the Group Scissor framework
//! (paper §3.2, Fig. 5, Table 3).
//!
//! Training proceeds with the group-lasso objective of Eq. (4); group norms
//! shrink toward zero, and at the end every group whose norm is at or below
//! a threshold is deleted (zeroed exactly). The surviving pattern is frozen
//! by a [`MaskSet`] and the network fine-tunes to recover accuracy. Routing
//! wires attached to deleted groups are removed, which
//! [`scissor_ncs::RoutingAnalysis`] quantifies.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use scissor_data::Dataset;
use scissor_ncs::RoutingAnalysis;
use scissor_nn::{Network, Phase, Sgd, SoftmaxCrossEntropy};

use crate::error::Result;
use crate::group_lasso::GroupLassoRegularizer;
use crate::masks::MaskSet;

/// Configuration of the deletion trainer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeletionConfig {
    /// Group-norm threshold below which a group is deleted.
    pub threshold: f64,
    /// Group-lasso training iterations.
    pub iters: usize,
    /// Fine-tuning iterations after deletion (masked).
    pub finetune_iters: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Optimizer for the group-lasso phase.
    pub sgd: Sgd,
    /// Optimizer for the fine-tuning phase.
    pub finetune_sgd: Sgd,
    /// Trace cadence (iterations between Fig. 5 records).
    pub record_every: usize,
    /// RNG seed for batch shuffling.
    pub seed: u64,
    /// Batch size for accuracy evaluation.
    pub eval_batch: usize,
}

impl DeletionConfig {
    /// A reasonable default deletion schedule.
    pub fn new() -> Self {
        Self {
            threshold: 1e-2,
            iters: 600,
            finetune_iters: 200,
            batch_size: 32,
            sgd: Sgd::with_momentum(0.01),
            finetune_sgd: Sgd::with_momentum(0.005),
            record_every: 100,
            seed: 0,
            eval_batch: 256,
        }
    }
}

impl Default for DeletionConfig {
    fn default() -> Self {
        Self::new()
    }
}

/// One Fig. 5 trace point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeletionRecord {
    /// Training iteration.
    pub iter: usize,
    /// Per-entry fraction of groups currently at/below the threshold.
    pub deleted_fraction: Vec<f64>,
    /// Test accuracy.
    pub accuracy: f64,
}

/// Result of a full deletion + fine-tune run.
#[derive(Debug, Clone)]
pub struct DeletionOutcome {
    /// Regularized parameter names, aligning with trace columns.
    pub entry_names: Vec<String>,
    /// Per-`record_every` trace (Fig. 5's series).
    pub trace: Vec<DeletionRecord>,
    /// Routing analysis of each regularized matrix after deletion.
    pub routing: Vec<RoutingAnalysis>,
    /// Accuracy after group-lasso training + deletion, before fine-tuning.
    pub accuracy_after_deletion: f64,
    /// Accuracy after fine-tuning (the number Table 3 reports against the
    /// baseline).
    pub final_accuracy: f64,
    /// The masks frozen for fine-tuning.
    pub masks: MaskSet,
}

impl DeletionOutcome {
    /// Mean remained-wire fraction across entries (paper's aggregation).
    pub fn mean_wire_fraction(&self) -> f64 {
        scissor_ncs::mean_wire_fraction(&self.routing)
    }

    /// Mean remained routing-area fraction across entries.
    pub fn mean_area_fraction(&self) -> f64 {
        scissor_ncs::mean_area_fraction(&self.routing)
    }
}

// One SGD step shares this much context between deletion and fine-tuning;
// bundling it into a struct would only rename the problem.
#[allow(clippy::too_many_arguments)]
fn train_one(
    net: &mut Network,
    train: &Dataset,
    batches: &mut Vec<Vec<usize>>,
    rng: &mut StdRng,
    batch_size: usize,
    sgd: &Sgd,
    iter: usize,
    reg: Option<&GroupLassoRegularizer>,
    masks: Option<&MaskSet>,
) -> Result<f64> {
    if batches.is_empty() {
        *batches = train.shuffled_batches(batch_size, rng);
        batches.reverse();
    }
    let idx = batches.pop().expect("refilled when empty");
    let (images, labels) = train.batch(&idx);
    let loss_fn = SoftmaxCrossEntropy::new();
    let logits = net.forward(&images, Phase::Train);
    let out = loss_fn.forward(&logits, &labels);
    net.backward(&loss_fn.backward(&out.probs, &labels));
    if let Some(reg) = reg {
        reg.accumulate_grads(net)?;
    }
    if let Some(masks) = masks {
        masks.apply_to_grads(net)?;
    }
    sgd.step(&mut net.params_mut(), iter);
    if let Some(masks) = masks {
        masks.apply_to_values(net)?;
    }
    Ok(out.loss)
}

/// Runs group connection deletion on `net`:
/// group-lasso training → threshold deletion → masked fine-tuning.
///
/// The regularizer defines *which* matrices participate (the paper applies
/// it to every matrix spanning more than one crossbar — see
/// [`GroupLassoRegularizer::auto_register`]).
///
/// # Errors
///
/// Fails on unknown/stale parameter registrations or tiling mismatches.
pub fn group_connection_deletion(
    net: &mut Network,
    train: &Dataset,
    test: &Dataset,
    reg: &GroupLassoRegularizer,
    cfg: &DeletionConfig,
) -> Result<DeletionOutcome> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut batches: Vec<Vec<usize>> = Vec::new();
    let mut trace = Vec::new();
    let entry_names = reg.entry_names();

    let record = |net: &mut Network, trace: &mut Vec<DeletionRecord>, iter: usize| -> Result<()> {
        let deleted: Vec<f64> =
            reg.deleted_fraction(net, cfg.threshold)?.into_iter().map(|(_, f)| f).collect();
        let accuracy = net.evaluate(test.images(), test.labels(), cfg.eval_batch);
        trace.push(DeletionRecord { iter, deleted_fraction: deleted, accuracy });
        Ok(())
    };

    // Phase 1: group-lasso training (Eq. 4–6).
    record(net, &mut trace, 0)?;
    for iter in 0..cfg.iters {
        train_one(
            net,
            train,
            &mut batches,
            &mut rng,
            cfg.batch_size,
            &cfg.sgd,
            iter,
            Some(reg),
            None,
        )?;
        if (iter + 1) % cfg.record_every == 0 {
            record(net, &mut trace, iter + 1)?;
        }
    }

    // Phase 2: exact deletion at the threshold.
    reg.delete_small_groups(net, cfg.threshold)?;
    let accuracy_after_deletion = net.evaluate(test.images(), test.labels(), cfg.eval_batch);
    let masks = MaskSet::capture_nonzero(net, &entry_names)?;

    // Phase 3: masked fine-tuning.
    let mut ft_batches: Vec<Vec<usize>> = Vec::new();
    for iter in 0..cfg.finetune_iters {
        train_one(
            net,
            train,
            &mut ft_batches,
            &mut rng,
            cfg.batch_size,
            &cfg.finetune_sgd,
            iter,
            None,
            Some(&masks),
        )?;
    }
    let final_accuracy = net.evaluate(test.images(), test.labels(), cfg.eval_batch);
    record(net, &mut trace, cfg.iters + cfg.finetune_iters)?;

    // Routing analysis of the surviving connection pattern.
    let mut routing = Vec::with_capacity(reg.entries().len());
    for entry in reg.entries() {
        let p = net
            .param(entry.param())
            .ok_or_else(|| crate::error::PruneError::UnknownParam { name: entry.param().into() })?;
        routing.push(RoutingAnalysis::analyze(entry.param(), p.value(), entry.tiling(), 0.0)?);
    }

    Ok(DeletionOutcome {
        entry_names,
        trace,
        routing,
        accuracy_after_deletion,
        final_accuracy,
        masks,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use scissor_data::{synth_mnist, SynthOptions};
    use scissor_ncs::CrossbarSpec;
    use scissor_nn::NetworkBuilder;

    fn setup() -> (Network, Dataset, Dataset) {
        let mut rng = StdRng::seed_from_u64(9);
        let net = NetworkBuilder::new((1, 28, 28))
            .conv("conv1", 6, 5, 2, 0, &mut rng)
            .maxpool(2, 2)
            .linear("fc1", 20, &mut rng)
            .relu()
            .linear("fc2", 10, &mut rng)
            .build();
        let train = synth_mnist(300, 31, SynthOptions::default());
        let test = synth_mnist(100, 32, SynthOptions::default());
        (net, train, test)
    }

    fn pretrain(net: &mut Network, train: &Dataset, iters: usize) {
        let mut rng = StdRng::seed_from_u64(77);
        let sgd = Sgd::with_momentum(0.02);
        let mut i = 0;
        'outer: loop {
            for idx in train.shuffled_batches(32, &mut rng) {
                if i >= iters {
                    break 'outer;
                }
                let (x, y) = train.batch(&idx);
                net.train_step(&x, &y, &sgd, i);
                i += 1;
            }
        }
    }

    #[test]
    fn deletion_deletes_wires_and_recovers_accuracy() {
        let (mut net, train, test) = setup();
        pretrain(&mut net, &train, 100);
        let baseline = net.evaluate(test.images(), test.labels(), 128);

        // Small crossbars so fc1.w (150×20) spans several.
        let spec = CrossbarSpec::default().with_max_size(16, 16).unwrap();
        let reg = GroupLassoRegularizer::auto_register(&net, &spec, 0.015).unwrap();
        assert!(!reg.entries().is_empty());

        let mut cfg = DeletionConfig::new();
        cfg.iters = 250;
        cfg.finetune_iters = 60;
        cfg.record_every = 50;
        cfg.threshold = 3e-2;
        cfg.sgd = Sgd::with_momentum(0.02);
        cfg.finetune_sgd = Sgd::with_momentum(0.01);

        let outcome = group_connection_deletion(&mut net, &train, &test, &reg, &cfg).unwrap();

        // Trace recorded at 0, 50, 100, 150, 200, 250 and the final point.
        assert_eq!(outcome.trace.len(), 7);
        // Some wires must have been deleted.
        assert!(
            outcome.mean_wire_fraction() < 1.0,
            "no wires deleted: {}",
            outcome.mean_wire_fraction()
        );
        // Routing area shrinks quadratically vs wires.
        assert!(outcome.mean_area_fraction() <= outcome.mean_wire_fraction() + 1e-12);
        // Fine-tuned accuracy stays near baseline.
        assert!(
            outcome.final_accuracy >= baseline - 0.15,
            "accuracy collapsed: {} vs {}",
            outcome.final_accuracy,
            baseline
        );
        // Masks keep deleted weights at exactly zero.
        for analysis in &outcome.routing {
            assert!(analysis.remained_wire_fraction() <= 1.0);
        }
        let fractions = outcome.masks.keep_fractions();
        assert!(fractions.iter().any(|(_, f)| *f < 1.0), "masks must reflect deletions");
    }

    #[test]
    fn stronger_lambda_deletes_more() {
        let (mut net, train, test) = setup();
        pretrain(&mut net, &train, 60);
        let snapshot = net.state_dict();
        let spec = CrossbarSpec::default().with_max_size(16, 16).unwrap();

        let run = |lambda: f32| -> f64 {
            let (mut n, _, _) = setup();
            n.load_state_dict(&snapshot).unwrap();
            let reg = GroupLassoRegularizer::auto_register(&n, &spec, lambda).unwrap();
            let mut cfg = DeletionConfig::new();
            cfg.iters = 100;
            cfg.finetune_iters = 0;
            cfg.record_every = 100;
            cfg.threshold = 2e-2;
            let out = group_connection_deletion(&mut n, &train, &test, &reg, &cfg).unwrap();
            out.mean_wire_fraction()
        };
        let gentle = run(0.0005);
        let harsh = run(0.01);
        assert!(
            harsh <= gentle + 1e-9,
            "larger λ must delete at least as many wires: {harsh} vs {gentle}"
        );
    }

    #[test]
    fn empty_regularizer_is_harmless() {
        let (mut net, train, test) = setup();
        let reg = GroupLassoRegularizer::new(0.01); // nothing registered
        let mut cfg = DeletionConfig::new();
        cfg.iters = 5;
        cfg.finetune_iters = 0;
        cfg.record_every = 5;
        let out = group_connection_deletion(&mut net, &train, &test, &reg, &cfg).unwrap();
        assert!(out.entry_names.is_empty());
        assert_eq!(out.mean_wire_fraction(), 0.0);
    }
}
