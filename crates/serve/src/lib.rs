//! # scissor-serve
//!
//! A micro-batching inference front-end over
//! [`CompiledNet`] — the serving half of the
//! training/serving split.
//!
//! The deployment artifact of Group Scissor is the *compressed* network:
//! rank-clipped and group-deleted so it fits crossbar hardware. Serving it
//! at traffic scale is a batching problem — single-sample forwards leave
//! the matmul micro-kernels starved (a batch-1 fully-connected layer is one
//! output row, below the 4-row register tile), while callers arrive one
//! sample at a time. [`Server`] bridges the two:
//!
//! * concurrent callers [`Server::submit`] single samples and block;
//! * batcher threads coalesce submissions into one tensor — up to
//!   [`ServeConfig::max_batch`] samples, waiting at most
//!   [`ServeConfig::max_wait`] past the oldest submission;
//! * one allocation-free [`CompiledNet::infer_into`] pass computes the
//!   whole batch (one im2col + matmul per layer, spread over the
//!   persistent rayon pool), and per-sample logits fan back out to the
//!   blocked callers.
//!
//! Because per-sample logits are **batch-invariant** (every kernel
//! accumulates each output element in a fixed order regardless of batch
//! size), a caller receives bit-for-bit the logits a direct
//! single-sample — or any other batch composition — forward would have
//! produced. The concurrency stress tests pin this down.
//!
//! A [`ServeStats`] counter surface reports throughput and latency:
//! requests served, realized batch sizes, full-batch vs timeout flushes,
//! and per-request latency aggregates.
//!
//! ## Example
//!
//! ```
//! use rand::SeedableRng;
//! use scissor_nn::{NetworkBuilder, Tensor4};
//! use scissor_serve::{Server, ServeConfig};
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let net = NetworkBuilder::new((1, 6, 6))
//!     .conv("conv1", 3, 3, 1, 0, &mut rng)
//!     .relu()
//!     .linear("fc", 4, &mut rng)
//!     .build();
//! let server = Server::start(net.compile().unwrap(), ServeConfig::default());
//!
//! let sample = Tensor4::zeros(1, 1, 6, 6);
//! let logits = server.submit(&sample).unwrap();
//! assert_eq!(logits.len(), 4);
//! assert_eq!(server.stats().requests, 1);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod error;
mod stats;

pub use error::ServeError;
pub use stats::ServeStats;

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use scissor_nn::{CompiledNet, InferScratch, Tensor4};

use stats::StatsInner;

/// Convenience alias for serve results.
pub type Result<T> = std::result::Result<T, ServeError>;

/// Batching knobs for a [`Server`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Largest batch a single forward pass will carry.
    pub max_batch: usize,
    /// Longest a submission may wait for co-riders, measured from the
    /// *oldest* sample in the forming batch. `ZERO` degenerates to
    /// whatever is queued at the moment a batcher looks.
    pub max_wait: Duration,
    /// Number of batcher threads. One is right for CPU-bound inference
    /// (the matmul itself fans out over the rayon pool); more overlap
    /// batch assembly with compute.
    pub workers: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self { max_batch: 32, max_wait: Duration::from_millis(2), workers: 1 }
    }
}

/// A single queued inference request.
struct Request {
    features: Vec<f32>,
    enqueued: Instant,
    slot: Arc<Slot>,
}

/// One caller's rendezvous: filled by a batcher, awaited by the submitter.
struct Slot {
    done: Mutex<Option<Vec<f32>>>,
    cv: Condvar,
}

struct QueueState {
    pending: VecDeque<Request>,
    shutdown: bool,
}

struct Shared {
    net: CompiledNet,
    cfg: ServeConfig,
    queue: Mutex<QueueState>,
    available: Condvar,
    stats: StatsInner,
}

/// The micro-batching inference server.
///
/// Submission is thread-safe through `&self`; drop (or [`Server::shutdown`])
/// drains the queue and joins the batcher threads.
pub struct Server {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

impl Server {
    /// Starts batcher threads over a compiled plan.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.max_batch` or `cfg.workers` is zero.
    pub fn start(net: CompiledNet, cfg: ServeConfig) -> Self {
        assert!(cfg.max_batch > 0, "max_batch must be positive");
        assert!(cfg.workers > 0, "workers must be positive");
        let shared = Arc::new(Shared {
            net,
            cfg,
            queue: Mutex::new(QueueState { pending: VecDeque::new(), shutdown: false }),
            available: Condvar::new(),
            stats: StatsInner::default(),
        });
        let handles = (0..cfg.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("scissor-serve-{i}"))
                    .spawn(move || batcher_loop(&shared))
                    .expect("spawn batcher thread")
            })
            .collect();
        Self { shared, handles }
    }

    /// The compiled plan being served.
    pub fn net(&self) -> &CompiledNet {
        &self.shared.net
    }

    /// Submits one sample (a batch-1 tensor) and blocks until its logits
    /// return.
    ///
    /// # Errors
    ///
    /// [`ServeError::ShapeMismatch`] if the sample's `(c, h, w)` differs
    /// from the plan's input shape or the tensor is not batch-1;
    /// [`ServeError::ShuttingDown`] after [`Server::shutdown`] began.
    pub fn submit(&self, sample: &Tensor4) -> Result<Vec<f32>> {
        let (b, c, h, w) = sample.shape();
        if b != 1 || (c, h, w) != self.shared.net.input_shape() {
            return Err(ServeError::ShapeMismatch {
                expected: self.shared.net.input_shape(),
                got: sample.shape(),
            });
        }
        self.submit_features(sample.as_slice())
    }

    /// Submits one sample as a raw `c·h·w` feature slice and blocks until
    /// its logits return.
    ///
    /// # Errors
    ///
    /// [`ServeError::FeatureLengthMismatch`] if the slice length is not the
    /// plan's `c·h·w`; [`ServeError::ShuttingDown`] after
    /// [`Server::shutdown`] began.
    pub fn submit_features(&self, features: &[f32]) -> Result<Vec<f32>> {
        let (c, h, w) = self.shared.net.input_shape();
        if features.len() != c * h * w {
            return Err(ServeError::FeatureLengthMismatch {
                expected: c * h * w,
                got: features.len(),
            });
        }
        let slot = Arc::new(Slot { done: Mutex::new(None), cv: Condvar::new() });
        {
            let mut queue = self.shared.queue.lock().expect("serve queue poisoned");
            if queue.shutdown {
                return Err(ServeError::ShuttingDown);
            }
            queue.pending.push_back(Request {
                features: features.to_vec(),
                enqueued: Instant::now(),
                slot: Arc::clone(&slot),
            });
        }
        self.shared.available.notify_all();
        let mut done = slot.done.lock().expect("serve slot poisoned");
        while done.is_none() {
            done = slot.cv.wait(done).expect("serve slot poisoned");
        }
        Ok(done.take().expect("slot filled"))
    }

    /// Snapshot of the throughput/latency counters.
    pub fn stats(&self) -> ServeStats {
        self.shared.stats.snapshot()
    }

    /// Stops accepting submissions, drains the queue and joins the batcher
    /// threads. Idempotent; also invoked by `Drop`.
    pub fn shutdown(&mut self) {
        {
            let mut queue = self.shared.queue.lock().expect("serve queue poisoned");
            queue.shutdown = true;
        }
        self.shared.available.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// One batcher thread: collect → infer → fan out, forever.
fn batcher_loop(shared: &Shared) {
    let (c, h, w) = shared.net.input_shape();
    let mut scratch = InferScratch::new();
    let mut batch_input = Tensor4::zeros(0, c, h, w);
    let mut guard = shared.queue.lock().expect("serve queue poisoned");
    loop {
        if guard.pending.is_empty() {
            if guard.shutdown {
                return;
            }
            guard = shared.available.wait(guard).expect("serve queue poisoned");
            continue;
        }
        // A batch is forming: wait for co-riders until it is full, the
        // oldest sample's wait budget runs out, or shutdown begins. The
        // deadline is recomputed from the *current* front each iteration —
        // with several workers, another batcher may drain the request the
        // previous deadline was keyed to, and a fresh arrival deserves its
        // own full coalescing window, not a stale (possibly expired) one.
        while guard.pending.len() < shared.cfg.max_batch && !guard.shutdown {
            let front = match guard.pending.front() {
                Some(req) => req,
                // Another worker drained the queue while we slept.
                None => break,
            };
            let deadline = front.enqueued + shared.cfg.max_wait;
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let (g, _timeout) =
                shared.available.wait_timeout(guard, deadline - now).expect("serve queue poisoned");
            guard = g;
        }
        // The queue may have been drained entirely while we slept.
        if guard.pending.is_empty() {
            continue;
        }
        let take = guard.pending.len().min(shared.cfg.max_batch);
        let batch: Vec<Request> = guard.pending.drain(..take).collect();
        drop(guard);

        run_batch(shared, &batch, &mut batch_input, &mut scratch, take);

        guard = shared.queue.lock().expect("serve queue poisoned");
    }
}

/// Assembles a drained batch, runs the forward pass and fans the logits
/// back out to the blocked submitters.
fn run_batch(
    shared: &Shared,
    batch: &[Request],
    batch_input: &mut Tensor4,
    scratch: &mut InferScratch,
    take: usize,
) {
    let (c, h, w) = shared.net.input_shape();
    batch_input.resize(take, c, h, w);
    for (i, req) in batch.iter().enumerate() {
        batch_input.sample_mut(i).copy_from_slice(&req.features);
    }
    let infer_start = Instant::now();
    let logits = shared.net.infer_into(batch_input, scratch);
    let infer_ns = infer_start.elapsed().as_nanos() as u64;

    // Record every counter BEFORE waking any submitter: a caller that
    // reads `stats()` right after its `submit` returns must see its own
    // request and its batch fully accounted.
    let now = Instant::now();
    for req in batch {
        let latency_ns = now.saturating_duration_since(req.enqueued).as_nanos() as u64;
        shared.stats.record_request(latency_ns);
    }
    shared.stats.record_batch(take as u64, take == shared.cfg.max_batch, infer_ns);

    for (i, req) in batch.iter().enumerate() {
        // Fill under the slot lock and notify before releasing it, so the
        // submitter cannot observe the fill and deallocate the slot
        // between the two.
        let mut done = req.slot.done.lock().expect("serve slot poisoned");
        *done = Some(logits.row(i).to_vec());
        req.slot.cv.notify_all();
        drop(done);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use scissor_nn::NetworkBuilder;

    fn tiny_plan() -> CompiledNet {
        let mut rng = StdRng::seed_from_u64(11);
        NetworkBuilder::new((1, 4, 4))
            .conv("conv1", 2, 3, 1, 0, &mut rng)
            .relu()
            .linear("fc", 3, &mut rng)
            .build()
            .compile()
            .expect("compile")
    }

    fn sample(seed: usize) -> Tensor4 {
        Tensor4::from_vec(
            1,
            1,
            4,
            4,
            (0..16).map(|i| ((i * 7 + seed * 13) % 23) as f32 * 0.1 - 1.0).collect(),
        )
    }

    #[test]
    fn submit_returns_compiled_logits() {
        let plan = tiny_plan();
        let expect = plan.infer(&sample(0));
        let server = Server::start(tiny_plan(), ServeConfig::default());
        let got = server.submit(&sample(0)).unwrap();
        assert_eq!(got.as_slice(), expect.as_slice());
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let server = Server::start(tiny_plan(), ServeConfig::default());
        let bad = Tensor4::zeros(1, 1, 5, 5);
        assert!(matches!(server.submit(&bad), Err(ServeError::ShapeMismatch { .. })));
        let two = Tensor4::zeros(2, 1, 4, 4);
        assert!(matches!(server.submit(&two), Err(ServeError::ShapeMismatch { .. })));
        assert!(matches!(
            server.submit_features(&[0.0; 3]),
            Err(ServeError::FeatureLengthMismatch { expected: 16, got: 3 })
        ));
    }

    #[test]
    fn shutdown_rejects_new_submissions() {
        let mut server = Server::start(tiny_plan(), ServeConfig::default());
        server.shutdown();
        assert!(matches!(server.submit(&sample(0)), Err(ServeError::ShuttingDown)));
        // Idempotent.
        server.shutdown();
    }

    #[test]
    fn stats_count_requests_and_batches() {
        let server = Server::start(
            tiny_plan(),
            ServeConfig { max_batch: 4, max_wait: Duration::from_millis(1), workers: 1 },
        );
        for s in 0..5 {
            server.submit(&sample(s)).unwrap();
        }
        let stats = server.stats();
        assert_eq!(stats.requests, 5);
        assert_eq!(stats.samples, 5);
        assert!(stats.batches >= 1 && stats.batches <= 5);
        assert!(stats.mean_batch_size() >= 1.0);
        assert!(stats.max_latency >= stats.mean_latency());
    }
}
