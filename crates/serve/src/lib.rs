//! # scissor-serve
//!
//! A micro-batching inference front-end over
//! [`CompiledNet`] — the serving half of the
//! training/serving split.
//!
//! The deployment artifact of Group Scissor is the *compressed* network:
//! rank-clipped and group-deleted so it fits crossbar hardware. Serving it
//! at traffic scale is a batching problem — single-sample forwards leave
//! the matmul micro-kernels starved (a batch-1 fully-connected layer is one
//! output row, below the 4-row register tile), while callers arrive one
//! sample at a time. The crate bridges the two at two API levels:
//!
//! * [`Replica`] is the reusable batching unit: one bounded request queue
//!   plus batcher threads over a *shared* `Arc<CompiledNet>`. Submission is
//!   **non-blocking** — [`Replica::submit`] enqueues and immediately
//!   returns a [`Ticket`]; the caller later [`Ticket::wait`]s (blocking) or
//!   polls [`Ticket::try_take`]. Many replicas can serve one plan (that is
//!   what `scissor_router` builds its sharded tier from).
//! * [`Server`] is the original single-replica convenience front-end with
//!   a blocking [`Server::submit`].
//!
//! Batcher threads coalesce submissions into one tensor — up to
//! [`ServeConfig::max_batch`] samples, waiting at most
//! [`ServeConfig::max_wait`] past the oldest submission — and one
//! allocation-free [`CompiledNet::infer_into`] pass computes the whole
//! batch (one im2col + matmul per layer, spread over the persistent rayon
//! pool) before per-sample logits fan back out to the tickets. That pass
//! is **cache-tiled** (`scissor_nn::TileConfig`): when a coalesced batch
//! would blow the LLC, the plan runs it in cache-sized sub-batches, each
//! flowing through all layers before the next — and because each batcher
//! pre-warms its scratch via [`CompiledNet::warm_scratch`], the
//! per-replica activation buffers are sized at the *tile*, not
//! `max_batch`, shrinking replica memory by the same factor.
//!
//! Overload is explicit: the queue is bounded by
//! [`ServeConfig::queue_cap`], and a submission finding it full is **shed**
//! with [`ServeError::Overloaded`] instead of growing the backlog without
//! bound. Shutdown is graceful: every admitted ticket is drained and
//! delivered before the batcher threads exit.
//!
//! Because per-sample logits are **batch-invariant** (every kernel
//! accumulates each output element in a fixed order regardless of batch
//! size), a caller receives bit-for-bit the logits a direct
//! single-sample — or any other batch composition — forward would have
//! produced. The concurrency stress tests pin this down.
//!
//! A [`ServeStats`] counter surface reports throughput and latency:
//! requests served, realized batch sizes, full-batch vs timeout flushes,
//! queue depth, shed count, and per-request latency aggregates plus a
//! fixed-bucket histogram (p50/p95/p99).
//!
//! ## Example
//!
//! ```
//! use rand::SeedableRng;
//! use scissor_nn::{NetworkBuilder, Tensor4};
//! use scissor_serve::{Server, ServeConfig};
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let net = NetworkBuilder::new((1, 6, 6))
//!     .conv("conv1", 3, 3, 1, 0, &mut rng)
//!     .relu()
//!     .linear("fc", 4, &mut rng)
//!     .build();
//! let server = Server::start(net.compile().unwrap(), ServeConfig::default());
//!
//! let sample = Tensor4::zeros(1, 1, 6, 6);
//! let logits = server.submit(&sample).unwrap();
//! assert_eq!(logits.len(), 4);
//! assert_eq!(server.stats().requests, 1);
//! ```
//!
//! Async submission against a bare replica:
//!
//! ```
//! use std::sync::Arc;
//! use rand::SeedableRng;
//! use scissor_nn::{NetworkBuilder, Tensor4};
//! use scissor_serve::{Replica, ServeConfig};
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let net = NetworkBuilder::new((1, 6, 6)).linear("fc", 4, &mut rng).build();
//! let plan = Arc::new(net.compile().unwrap());
//! let replica = Replica::start(Arc::clone(&plan), ServeConfig::default());
//!
//! let ticket = replica.submit(&Tensor4::zeros(1, 1, 6, 6)).unwrap(); // non-blocking
//! let logits = ticket.wait();                                        // blocks
//! assert_eq!(logits.len(), 4);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod error;
mod stats;

pub use error::ServeError;
pub use stats::{ServeStats, LATENCY_BUCKETS};

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use scissor_nn::{CompiledNet, ServingForm, Tensor4};

use stats::StatsInner;

/// Convenience alias for serve results.
pub type Result<T> = std::result::Result<T, ServeError>;

/// Batching knobs for a [`Replica`] (and the [`Server`] wrapper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Largest batch a single forward pass will carry.
    pub max_batch: usize,
    /// Longest a submission may wait for co-riders, measured from the
    /// *oldest* sample in the forming batch. `ZERO` degenerates to
    /// whatever is queued at the moment a batcher looks.
    pub max_wait: Duration,
    /// Number of batcher threads. One is right for CPU-bound inference
    /// (the matmul itself fans out over the rayon pool); more overlap
    /// batch assembly with compute.
    pub workers: usize,
    /// Bounded-queue high-water mark: a submission that finds this many
    /// requests already pending is shed with [`ServeError::Overloaded`].
    /// Defaults to `usize::MAX` (never shed) so direct [`Server`] users
    /// keep the historical never-fail submit; `scissor_router` sets real
    /// bounds.
    pub queue_cap: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            max_batch: 32,
            max_wait: Duration::from_millis(2),
            workers: 1,
            queue_cap: usize::MAX,
        }
    }
}

/// A single queued inference request.
struct Request {
    features: Vec<f32>,
    enqueued: Instant,
    slot: Arc<Slot>,
}

/// Lifecycle of one rendezvous slot: pending → ready → taken.
enum SlotState {
    /// No batch has delivered yet.
    Pending,
    /// Logits delivered, not yet redeemed.
    Ready(Vec<f32>),
    /// Logits redeemed via `try_take`; a later `wait` must fail loudly
    /// instead of blocking on a condvar that will never fire again.
    Taken,
}

/// One caller's rendezvous: filled by a batcher, awaited by the ticket
/// holder.
struct Slot {
    done: Mutex<SlotState>,
    cv: Condvar,
}

/// A claim on the logits of one admitted submission.
///
/// Returned immediately by [`Replica::submit`]; redeemed by blocking
/// ([`Ticket::wait`]) or polling ([`Ticket::try_take`]). Every admitted
/// ticket is eventually fulfilled — shutdown drains the queue before the
/// batcher threads exit — so `wait` cannot hang on a live or draining
/// replica. Dropping a ticket abandons the result (the batch still runs).
pub struct Ticket {
    slot: Arc<Slot>,
}

impl std::fmt::Debug for Ticket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ticket").field("ready", &self.is_ready()).finish()
    }
}

impl Ticket {
    /// Blocks until the logits arrive and returns them.
    ///
    /// # Panics
    ///
    /// Panics if the logits were already redeemed through
    /// [`Ticket::try_take`] — blocking would otherwise hang forever on a
    /// slot that can never be filled again.
    pub fn wait(self) -> Vec<f32> {
        let mut done = self.slot.done.lock().expect("serve slot poisoned");
        loop {
            match std::mem::replace(&mut *done, SlotState::Taken) {
                SlotState::Ready(logits) => return logits,
                SlotState::Taken => panic!("ticket already redeemed via try_take"),
                SlotState::Pending => {
                    *done = SlotState::Pending;
                    done = self.slot.cv.wait(done).expect("serve slot poisoned");
                }
            }
        }
    }

    /// Takes the logits if they have already arrived; `None` otherwise.
    /// A ticket whose logits were taken will never yield them again.
    pub fn try_take(&self) -> Option<Vec<f32>> {
        let mut done = self.slot.done.lock().expect("serve slot poisoned");
        match std::mem::replace(&mut *done, SlotState::Taken) {
            SlotState::Ready(logits) => Some(logits),
            SlotState::Taken => None,
            SlotState::Pending => {
                *done = SlotState::Pending;
                None
            }
        }
    }

    /// Whether the logits have arrived (and were not yet taken).
    pub fn is_ready(&self) -> bool {
        matches!(*self.slot.done.lock().expect("serve slot poisoned"), SlotState::Ready(_))
    }
}

struct QueueState {
    pending: VecDeque<Request>,
    shutdown: bool,
    paused: bool,
}

struct Shared {
    net: Arc<CompiledNet>,
    cfg: ServeConfig,
    queue: Mutex<QueueState>,
    available: Condvar,
    stats: StatsInner,
}

/// One batching replica: a bounded request queue plus batcher threads over
/// a shared compiled plan.
///
/// Many replicas may serve the same `Arc<CompiledNet>` — the plan is
/// frozen and `Sync`, so replication costs only the per-replica scratch
/// and threads, not a weight copy. Submission is thread-safe through
/// `&self`; drop (or [`Replica::shutdown`]) drains the queue — delivering
/// every admitted [`Ticket`] — and joins the batcher threads.
pub struct Replica {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

impl Replica {
    /// Starts batcher threads over a shared compiled plan.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.max_batch`, `cfg.workers` or `cfg.queue_cap` is zero.
    pub fn start(net: Arc<CompiledNet>, cfg: ServeConfig) -> Self {
        assert!(cfg.max_batch > 0, "max_batch must be positive");
        assert!(cfg.workers > 0, "workers must be positive");
        assert!(cfg.queue_cap > 0, "queue_cap must be positive");
        let shared = Arc::new(Shared {
            net,
            cfg,
            queue: Mutex::new(QueueState {
                pending: VecDeque::new(),
                shutdown: false,
                paused: false,
            }),
            available: Condvar::new(),
            stats: StatsInner::default(),
        });
        let handles = (0..cfg.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("scissor-serve-{i}"))
                    .spawn(move || batcher_loop(&shared))
                    .expect("spawn batcher thread")
            })
            .collect();
        Self { shared, handles }
    }

    /// The compiled plan being served.
    pub fn net(&self) -> &CompiledNet {
        &self.shared.net
    }

    /// A shared handle to the compiled plan (for spawning sibling
    /// replicas).
    pub fn plan(&self) -> Arc<CompiledNet> {
        Arc::clone(&self.shared.net)
    }

    /// The numeric serving form of the plan this replica executes
    /// (`f32` or group-quantized `int8` — fixed when the plan was
    /// compiled).
    pub fn serving_form(&self) -> ServingForm {
        self.shared.net.serving_form()
    }

    /// Submits one sample (a batch-1 tensor) without blocking and returns
    /// its [`Ticket`].
    ///
    /// # Errors
    ///
    /// [`ServeError::ShapeMismatch`] if the sample's `(c, h, w)` differs
    /// from the plan's input shape or the tensor is not batch-1;
    /// [`ServeError::Overloaded`] if the queue is at
    /// [`ServeConfig::queue_cap`]; [`ServeError::ShuttingDown`] after
    /// [`Replica::shutdown`] began.
    pub fn submit(&self, sample: &Tensor4) -> Result<Ticket> {
        let (b, c, h, w) = sample.shape();
        if b != 1 || (c, h, w) != self.shared.net.input_shape() {
            return Err(ServeError::ShapeMismatch {
                expected: self.shared.net.input_shape(),
                got: sample.shape(),
            });
        }
        self.submit_features(sample.as_slice())
    }

    /// Submits one sample as a raw `c·h·w` feature slice without blocking
    /// and returns its [`Ticket`].
    ///
    /// # Errors
    ///
    /// [`ServeError::FeatureLengthMismatch`] if the slice length is not the
    /// plan's `c·h·w`; otherwise as [`Replica::submit`].
    pub fn submit_features(&self, features: &[f32]) -> Result<Ticket> {
        let (c, h, w) = self.shared.net.input_shape();
        if features.len() != c * h * w {
            return Err(ServeError::FeatureLengthMismatch {
                expected: c * h * w,
                got: features.len(),
            });
        }
        let slot = Arc::new(Slot { done: Mutex::new(SlotState::Pending), cv: Condvar::new() });
        {
            let mut queue = self.shared.queue.lock().expect("serve queue poisoned");
            if queue.shutdown {
                return Err(ServeError::ShuttingDown);
            }
            let depth = queue.pending.len();
            if depth >= self.shared.cfg.queue_cap {
                // Shed under the lock so depth/cap in the error are exact.
                self.shared.stats.record_shed();
                return Err(ServeError::Overloaded { depth, cap: self.shared.cfg.queue_cap });
            }
            queue.pending.push_back(Request {
                features: features.to_vec(),
                enqueued: Instant::now(),
                slot: Arc::clone(&slot),
            });
            self.shared.stats.set_queue_depth(queue.pending.len() as u64);
        }
        self.shared.available.notify_all();
        Ok(Ticket { slot })
    }

    /// Pending (admitted, not yet drained) requests — the value the
    /// bounded-queue check and least-loaded routing read. Lock-free.
    pub fn queue_depth(&self) -> usize {
        self.shared.stats.queue_depth() as usize
    }

    /// Pauses batch processing: batcher threads stop draining the queue
    /// (a batch already in flight completes). Submissions are still
    /// admitted until the queue cap. Used for maintenance windows and for
    /// deterministic overload tests.
    pub fn pause(&self) {
        let mut queue = self.shared.queue.lock().expect("serve queue poisoned");
        queue.paused = true;
    }

    /// Resumes batch processing after [`Replica::pause`].
    pub fn resume(&self) {
        {
            let mut queue = self.shared.queue.lock().expect("serve queue poisoned");
            queue.paused = false;
        }
        self.shared.available.notify_all();
    }

    /// Snapshot of the throughput/latency counters.
    pub fn stats(&self) -> ServeStats {
        self.shared.stats.snapshot()
    }

    /// Stops accepting submissions, drains the queue (delivering every
    /// admitted ticket — a pause is overridden) and joins the batcher
    /// threads. Idempotent; also invoked by `Drop`.
    pub fn shutdown(&mut self) {
        {
            let mut queue = self.shared.queue.lock().expect("serve queue poisoned");
            queue.shutdown = true;
        }
        self.shared.available.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Replica {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The single-replica micro-batching inference server.
///
/// A convenience wrapper over one [`Replica`] with a *blocking*
/// [`Server::submit`]; multi-replica, multi-model serving lives in
/// `scissor_router`. Submission is thread-safe through `&self`; drop (or
/// [`Server::shutdown`]) drains the queue and joins the batcher threads.
pub struct Server {
    replica: Replica,
}

impl Server {
    /// Starts batcher threads over a compiled plan.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.max_batch`, `cfg.workers` or `cfg.queue_cap` is zero.
    pub fn start(net: CompiledNet, cfg: ServeConfig) -> Self {
        Self { replica: Replica::start(Arc::new(net), cfg) }
    }

    /// The compiled plan being served.
    pub fn net(&self) -> &CompiledNet {
        self.replica.net()
    }

    /// The underlying batching replica (async submission, pause/resume,
    /// queue depth).
    pub fn replica(&self) -> &Replica {
        &self.replica
    }

    /// The numeric serving form of the plan being served.
    pub fn serving_form(&self) -> ServingForm {
        self.replica.serving_form()
    }

    /// Submits one sample (a batch-1 tensor) and blocks until its logits
    /// return.
    ///
    /// # Errors
    ///
    /// [`ServeError::ShapeMismatch`] if the sample's `(c, h, w)` differs
    /// from the plan's input shape or the tensor is not batch-1;
    /// [`ServeError::Overloaded`] if a finite
    /// [`ServeConfig::queue_cap`] is exceeded;
    /// [`ServeError::ShuttingDown`] after [`Server::shutdown`] began.
    pub fn submit(&self, sample: &Tensor4) -> Result<Vec<f32>> {
        Ok(self.replica.submit(sample)?.wait())
    }

    /// Submits one sample as a raw `c·h·w` feature slice and blocks until
    /// its logits return.
    ///
    /// # Errors
    ///
    /// [`ServeError::FeatureLengthMismatch`] if the slice length is not the
    /// plan's `c·h·w`; otherwise as [`Server::submit`].
    pub fn submit_features(&self, features: &[f32]) -> Result<Vec<f32>> {
        Ok(self.replica.submit_features(features)?.wait())
    }

    /// Snapshot of the throughput/latency counters.
    pub fn stats(&self) -> ServeStats {
        self.replica.stats()
    }

    /// Stops accepting submissions, drains the queue and joins the batcher
    /// threads. Idempotent; also invoked by `Drop`.
    pub fn shutdown(&mut self) {
        self.replica.shutdown();
    }
}

/// One batcher thread: collect → infer → fan out, forever.
fn batcher_loop(shared: &Shared) {
    let (c, h, w) = shared.net.input_shape();
    // Pre-size the scratch at the largest batch this replica will ever
    // form, so even the first served request runs the allocation-free
    // warm path.
    let mut scratch = shared.net.warm_scratch(shared.cfg.max_batch);
    let mut batch_input = Tensor4::zeros(0, c, h, w);
    let mut guard = shared.queue.lock().expect("serve queue poisoned");
    loop {
        if guard.paused && !guard.shutdown {
            guard = shared.available.wait(guard).expect("serve queue poisoned");
            continue;
        }
        if guard.pending.is_empty() {
            if guard.shutdown {
                return;
            }
            guard = shared.available.wait(guard).expect("serve queue poisoned");
            continue;
        }
        // A batch is forming: wait for co-riders until it is full, the
        // oldest sample's wait budget runs out, or shutdown/pause begins.
        // The deadline is recomputed from the *current* front each
        // iteration — with several workers, another batcher may drain the
        // request the previous deadline was keyed to, and a fresh arrival
        // deserves its own full coalescing window, not a stale (possibly
        // expired) one.
        while guard.pending.len() < shared.cfg.max_batch && !guard.shutdown && !guard.paused {
            let front = match guard.pending.front() {
                Some(req) => req,
                // Another worker drained the queue while we slept.
                None => break,
            };
            let deadline = front.enqueued + shared.cfg.max_wait;
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let (g, _timeout) =
                shared.available.wait_timeout(guard, deadline - now).expect("serve queue poisoned");
            guard = g;
        }
        // Paused mid-coalesce: leave the queue alone until resumed (the
        // shutdown drain overrides a pause).
        if guard.paused && !guard.shutdown {
            continue;
        }
        // The queue may have been drained entirely while we slept.
        if guard.pending.is_empty() {
            continue;
        }
        let take = guard.pending.len().min(shared.cfg.max_batch);
        let batch: Vec<Request> = guard.pending.drain(..take).collect();
        shared.stats.set_queue_depth(guard.pending.len() as u64);
        drop(guard);

        run_batch(shared, &batch, &mut batch_input, &mut scratch, take);

        guard = shared.queue.lock().expect("serve queue poisoned");
    }
}

/// Assembles a drained batch, runs the forward pass and fans the logits
/// back out to the waiting tickets.
fn run_batch(
    shared: &Shared,
    batch: &[Request],
    batch_input: &mut Tensor4,
    scratch: &mut scissor_nn::InferScratch,
    take: usize,
) {
    let (c, h, w) = shared.net.input_shape();
    batch_input.resize(take, c, h, w);
    for (i, req) in batch.iter().enumerate() {
        batch_input.sample_mut(i).copy_from_slice(&req.features);
    }
    let infer_start = Instant::now();
    let logits = shared.net.infer_into(batch_input, scratch);
    let infer_ns = infer_start.elapsed().as_nanos() as u64;

    // Record every counter BEFORE waking any ticket holder: a caller that
    // reads `stats()` right after its `wait` returns must see its own
    // request and its batch fully accounted.
    let now = Instant::now();
    for req in batch {
        let latency_ns = now.saturating_duration_since(req.enqueued).as_nanos() as u64;
        shared.stats.record_request(latency_ns);
    }
    shared.stats.record_batch(take as u64, take == shared.cfg.max_batch, infer_ns);

    for (i, req) in batch.iter().enumerate() {
        // Fill under the slot lock and notify before releasing it, so the
        // ticket holder cannot observe the fill and deallocate the slot
        // between the two.
        let mut done = req.slot.done.lock().expect("serve slot poisoned");
        *done = SlotState::Ready(logits.row(i).to_vec());
        req.slot.cv.notify_all();
        drop(done);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use scissor_nn::NetworkBuilder;

    fn tiny_plan() -> CompiledNet {
        let mut rng = StdRng::seed_from_u64(11);
        NetworkBuilder::new((1, 4, 4))
            .conv("conv1", 2, 3, 1, 0, &mut rng)
            .relu()
            .linear("fc", 3, &mut rng)
            .build()
            .compile()
            .expect("compile")
    }

    fn sample(seed: usize) -> Tensor4 {
        Tensor4::from_vec(
            1,
            1,
            4,
            4,
            (0..16).map(|i| ((i * 7 + seed * 13) % 23) as f32 * 0.1 - 1.0).collect(),
        )
    }

    #[test]
    fn submit_returns_compiled_logits() {
        let plan = tiny_plan();
        let expect = plan.infer(&sample(0));
        let server = Server::start(tiny_plan(), ServeConfig::default());
        let got = server.submit(&sample(0)).unwrap();
        assert_eq!(got.as_slice(), expect.as_slice());
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let server = Server::start(tiny_plan(), ServeConfig::default());
        let bad = Tensor4::zeros(1, 1, 5, 5);
        assert!(matches!(server.submit(&bad), Err(ServeError::ShapeMismatch { .. })));
        let two = Tensor4::zeros(2, 1, 4, 4);
        assert!(matches!(server.submit(&two), Err(ServeError::ShapeMismatch { .. })));
        assert!(matches!(
            server.submit_features(&[0.0; 3]),
            Err(ServeError::FeatureLengthMismatch { expected: 16, got: 3 })
        ));
    }

    #[test]
    fn shutdown_rejects_new_submissions() {
        let mut server = Server::start(tiny_plan(), ServeConfig::default());
        server.shutdown();
        assert!(matches!(server.submit(&sample(0)), Err(ServeError::ShuttingDown)));
        // Idempotent.
        server.shutdown();
    }

    #[test]
    fn stats_count_requests_and_batches() {
        let server = Server::start(
            tiny_plan(),
            ServeConfig {
                max_batch: 4,
                max_wait: Duration::from_millis(1),
                ..ServeConfig::default()
            },
        );
        for s in 0..5 {
            server.submit(&sample(s)).unwrap();
        }
        let stats = server.stats();
        assert_eq!(stats.requests, 5);
        assert_eq!(stats.samples, 5);
        assert!(stats.batches >= 1 && stats.batches <= 5);
        assert!(stats.mean_batch_size() >= 1.0);
        assert!(stats.max_latency >= stats.mean_latency());
        assert_eq!(stats.shed, 0);
        assert_eq!(stats.queue_depth, 0, "all requests delivered → queue empty");
        assert_eq!(stats.latency_hist.iter().sum::<u64>(), 5);
        assert!(stats.p50_latency() <= stats.p99_latency());
    }

    #[test]
    fn ticket_try_take_and_wait() {
        let plan = tiny_plan();
        let expect = plan.infer(&sample(4));
        let replica = Replica::start(Arc::new(tiny_plan()), ServeConfig::default());
        let ticket = replica.submit(&sample(4)).unwrap();
        // Poll until ready, then take without blocking.
        let got = loop {
            if let Some(v) = ticket.try_take() {
                break v;
            }
            std::thread::yield_now();
        };
        assert_eq!(got.as_slice(), expect.as_slice());
        assert!(!ticket.is_ready(), "taken logits are gone");
        assert!(ticket.try_take().is_none());
        // wait() path on a second ticket.
        let got = replica.submit(&sample(4)).unwrap().wait();
        assert_eq!(got.as_slice(), expect.as_slice());
    }

    #[test]
    #[should_panic(expected = "already redeemed")]
    fn wait_after_try_take_panics_instead_of_hanging() {
        let replica = Replica::start(Arc::new(tiny_plan()), ServeConfig::default());
        let ticket = replica.submit(&sample(1)).unwrap();
        loop {
            if ticket.try_take().is_some() {
                break;
            }
            std::thread::yield_now();
        }
        // The logits are gone; blocking would hang forever, so this must
        // fail loudly instead.
        let _ = ticket.wait();
    }

    #[test]
    fn paused_replica_admits_until_cap_then_sheds() {
        let replica = Replica::start(
            Arc::new(tiny_plan()),
            ServeConfig { queue_cap: 3, ..ServeConfig::default() },
        );
        replica.pause();
        let tickets: Vec<Ticket> =
            (0..3).map(|s| replica.submit(&sample(s)).expect("admitted")).collect();
        assert_eq!(replica.queue_depth(), 3);
        // Queue is at the high-water mark: the next submission sheds.
        match replica.submit(&sample(9)) {
            Err(ServeError::Overloaded { depth: 3, cap: 3 }) => {}
            other => panic!("expected Overloaded, got {other:?}"),
        }
        assert_eq!(replica.stats().shed, 1);
        // Resume: every admitted ticket is delivered with exact logits.
        replica.resume();
        let reference = tiny_plan();
        for (s, t) in tickets.into_iter().enumerate() {
            let want = reference.infer(&sample(s));
            assert_eq!(t.wait().as_slice(), want.as_slice(), "ticket {s}");
        }
        assert_eq!(replica.queue_depth(), 0);
    }

    #[test]
    fn shutdown_drains_admitted_tickets_even_when_paused() {
        let mut replica = Replica::start(Arc::new(tiny_plan()), ServeConfig::default());
        replica.pause();
        let tickets: Vec<Ticket> =
            (0..4).map(|s| replica.submit(&sample(s)).expect("admitted")).collect();
        assert_eq!(replica.queue_depth(), 4);
        // Shutdown overrides the pause and drains everything admitted.
        replica.shutdown();
        let reference = tiny_plan();
        for (s, t) in tickets.into_iter().enumerate() {
            let want = reference.infer(&sample(s));
            assert_eq!(t.wait().as_slice(), want.as_slice(), "ticket {s}");
        }
        assert!(matches!(replica.submit(&sample(0)), Err(ServeError::ShuttingDown)));
    }

    #[test]
    fn tiled_plan_serves_identical_logits_through_the_batcher() {
        use scissor_nn::TileConfig;
        // Force aggressive tiling (sub-batches of 2 under a max_batch of
        // 8): coalesced batches run the tiled path and every ticket must
        // still receive the exact logits an untiled pass produces.
        let reference = tiny_plan();
        let mut tiled = tiny_plan();
        tiled.set_tile_config(TileConfig::fixed(2));
        let replica = Replica::start(
            Arc::new(tiled),
            ServeConfig {
                max_batch: 8,
                max_wait: Duration::from_millis(5),
                ..ServeConfig::default()
            },
        );
        replica.pause();
        let tickets: Vec<Ticket> =
            (0..8).map(|s| replica.submit(&sample(s)).expect("admitted")).collect();
        replica.resume();
        for (s, t) in tickets.into_iter().enumerate() {
            let want = reference.infer(&sample(s));
            assert_eq!(t.wait().as_slice(), want.as_slice(), "sample {s}");
        }
    }

    #[test]
    fn replicas_share_one_plan() {
        let plan = Arc::new(tiny_plan());
        let a = Replica::start(Arc::clone(&plan), ServeConfig::default());
        let b = Replica::start(a.plan(), ServeConfig::default());
        let expect = plan.infer(&sample(2));
        assert_eq!(a.submit(&sample(2)).unwrap().wait().as_slice(), expect.as_slice());
        assert_eq!(b.submit(&sample(2)).unwrap().wait().as_slice(), expect.as_slice());
        // Three handles to one frozen plan: the two replicas and ours.
        assert_eq!(Arc::strong_count(&plan), 3);
    }
}
