//! # scissor-serve
//!
//! A micro-batching inference front-end over
//! [`CompiledNet`] — the serving half of the
//! training/serving split.
//!
//! The deployment artifact of Group Scissor is the *compressed* network:
//! rank-clipped and group-deleted so it fits crossbar hardware. Serving it
//! at traffic scale is a batching problem — single-sample forwards leave
//! the matmul micro-kernels starved (a batch-1 fully-connected layer is one
//! output row, below the 4-row register tile), while callers arrive one
//! sample at a time. The crate bridges the two at two API levels:
//!
//! * [`Replica`] is the reusable batching unit: one bounded request queue
//!   plus batcher threads over a *shared* `Arc<CompiledNet>`. Submission is
//!   **non-blocking** — [`Replica::submit`] enqueues and immediately
//!   returns a [`Ticket`]; the caller later [`Ticket::wait`]s (blocking) or
//!   polls [`Ticket::try_take`]. Many replicas can serve one plan (that is
//!   what `scissor_router` builds its sharded tier from).
//! * [`Server`] is the original single-replica convenience front-end with
//!   a blocking [`Server::submit`].
//!
//! Batcher threads coalesce submissions into one tensor — up to
//! [`ServeConfig::max_batch`] samples, waiting at most
//! [`ServeConfig::max_wait`] past the oldest submission — and one
//! allocation-free [`CompiledNet::infer_into`] pass computes the whole
//! batch (one im2col + matmul per layer, spread over the persistent rayon
//! pool) before per-sample logits fan back out to the tickets. That pass
//! is **cache-tiled** (`scissor_nn::TileConfig`): when a coalesced batch
//! would blow the LLC, the plan runs it in cache-sized sub-batches, each
//! flowing through all layers before the next — and because each batcher
//! pre-warms its scratch via [`CompiledNet::warm_scratch`], the
//! per-replica activation buffers are sized at the *tile*, not
//! `max_batch`, shrinking replica memory by the same factor.
//!
//! Overload is explicit: the queue is bounded by
//! [`ServeConfig::queue_cap`], and a submission finding it full is **shed**
//! with [`ServeError::Overloaded`] instead of growing the backlog without
//! bound. Shutdown is graceful: every admitted ticket is drained and
//! delivered before the batcher threads exit.
//!
//! Because per-sample logits are **batch-invariant** (every kernel
//! accumulates each output element in a fixed order regardless of batch
//! size), a caller receives bit-for-bit the logits a direct
//! single-sample — or any other batch composition — forward would have
//! produced. The concurrency stress tests pin this down.
//!
//! A [`ServeStats`] counter surface reports throughput and latency:
//! requests served, realized batch sizes, full-batch vs timeout flushes,
//! queue depth, shed count, and per-request latency aggregates plus a
//! fixed-bucket histogram (p50/p95/p99).
//!
//! ## Example
//!
//! ```
//! use rand::SeedableRng;
//! use scissor_nn::{NetworkBuilder, Tensor4};
//! use scissor_serve::{Server, ServeConfig};
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let net = NetworkBuilder::new((1, 6, 6))
//!     .conv("conv1", 3, 3, 1, 0, &mut rng)
//!     .relu()
//!     .linear("fc", 4, &mut rng)
//!     .build();
//! let server = Server::start(net.compile().unwrap(), ServeConfig::default());
//!
//! let sample = Tensor4::zeros(1, 1, 6, 6);
//! let logits = server.submit(&sample).unwrap();
//! assert_eq!(logits.len(), 4);
//! assert_eq!(server.stats().requests, 1);
//! ```
//!
//! Async submission against a bare replica:
//!
//! ```
//! use std::sync::Arc;
//! use rand::SeedableRng;
//! use scissor_nn::{NetworkBuilder, Tensor4};
//! use scissor_serve::{Replica, ServeConfig};
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let net = NetworkBuilder::new((1, 6, 6)).linear("fc", 4, &mut rng).build();
//! let plan = Arc::new(net.compile().unwrap());
//! let replica = Replica::start(Arc::clone(&plan), ServeConfig::default());
//!
//! let ticket = replica.submit(&Tensor4::zeros(1, 1, 6, 6)).unwrap(); // non-blocking
//! let logits = ticket.wait();                                        // blocks
//! assert_eq!(logits.len(), 4);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod clock;
mod error;
mod stats;

pub use clock::{Clock, MonotonicClock, VirtualClock};
pub use error::ServeError;
pub use scissor_obs::{SpanKind, SpanRecord, TraceId, TraceLog};
pub use stats::{bucket_upper_ns, Ewma, ServeStats, DEFAULT_EWMA_ALPHA_PCT, LATENCY_BUCKETS};

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use scissor_nn::{CompiledNet, ServingForm, Tensor4};

use stats::StatsInner;

/// Convenience alias for serve results.
pub type Result<T> = std::result::Result<T, ServeError>;

/// Batching knobs for a [`Replica`] (and the [`Server`] wrapper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Largest batch a single forward pass will carry.
    pub max_batch: usize,
    /// Longest a submission may wait for co-riders, measured from the
    /// *oldest* sample in the forming batch. `ZERO` degenerates to
    /// whatever is queued at the moment a batcher looks.
    pub max_wait: Duration,
    /// Number of batcher threads. One is right for CPU-bound inference
    /// (the matmul itself fans out over the rayon pool); more overlap
    /// batch assembly with compute.
    pub workers: usize,
    /// Bounded-queue high-water mark: a submission that finds this many
    /// requests already pending is shed with [`ServeError::Overloaded`].
    /// Defaults to `usize::MAX` (never shed) so direct [`Server`] users
    /// keep the historical never-fail submit; `scissor_router` sets real
    /// bounds.
    pub queue_cap: usize,
    /// Smoothing factor (percent, clamped to `[1, 100]`) for the
    /// per-replica service-time EWMA latency-aware routing scores on —
    /// see [`ServeStats::ewma_service_ns`].
    pub ewma_alpha_pct: u8,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            max_batch: 32,
            max_wait: Duration::from_millis(2),
            workers: 1,
            queue_cap: usize::MAX,
            ewma_alpha_pct: DEFAULT_EWMA_ALPHA_PCT,
        }
    }
}

/// This replica's connection to a shared [`TraceLog`]: the log plus the
/// replica id spans are stamped with. Built by the owner (the router
/// assigns router-wide unique ids) and passed to
/// [`Replica::start_traced`]; a replica without one records no spans.
#[derive(Debug, Clone)]
pub struct TraceSink {
    log: Arc<TraceLog>,
    replica: u64,
}

impl TraceSink {
    /// A sink stamping spans with `replica`.
    pub fn new(log: Arc<TraceLog>, replica: u64) -> Self {
        Self { log, replica }
    }

    /// The replica id spans are stamped with.
    pub fn replica_id(&self) -> u64 {
        self.replica
    }

    /// The shared span log.
    pub fn log(&self) -> &Arc<TraceLog> {
        &self.log
    }
}

/// A single queued inference request.
struct Request {
    features: Vec<f32>,
    /// Clock timestamp at admission ([`Clock::now_ns`]).
    enqueued_ns: u64,
    slot: Arc<Slot>,
    /// Trace identity, when the replica traces and tracing was enabled at
    /// admission. Travels with the request through `dismantle`/`inject`.
    trace: Option<TraceId>,
}

/// An admitted-but-not-yet-served request extracted from a replica by
/// [`Replica::dismantle`], carrying its caller's live rendezvous slot.
///
/// Opaque: the only thing to do with one is [`Replica::inject`] it into a
/// sibling replica serving the *same plan*, which preserves the caller's
/// [`Ticket`] identity (and its original enqueue timestamp, so measured
/// latency includes the reroute) — the mechanism behind zero-lost-ticket
/// replica teardown in `scissor_router`.
pub struct PendingRequest {
    inner: Request,
}

impl std::fmt::Debug for PendingRequest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PendingRequest")
            .field("features", &self.inner.features.len())
            .field("enqueued_ns", &self.inner.enqueued_ns)
            .finish()
    }
}

/// What [`Replica::dismantle`] leaves behind: the backlog to reroute and
/// the dead replica's final counters (EWMA zeroed — it is a routing
/// signal, not a counter) for the owner to fold into its accumulated
/// totals so teardown never makes cumulative stats regress.
#[derive(Debug)]
pub struct Dismantled {
    /// Requests that were still pending, in admission order, for
    /// [`Replica::inject`]ion into sibling replicas.
    pub pending: Vec<PendingRequest>,
    /// The replica's counter snapshot after its batchers joined (any
    /// in-flight batch's deliveries included; `queue_depth` is 0).
    pub stats: ServeStats,
}

/// Lifecycle of one rendezvous slot: pending → ready → taken.
enum SlotState {
    /// No batch has delivered yet.
    Pending,
    /// Logits delivered, not yet redeemed.
    Ready(Vec<f32>),
    /// Logits redeemed via `try_take`; a later `wait` must fail loudly
    /// instead of blocking on a condvar that will never fire again.
    Taken,
}

/// One caller's rendezvous: filled by a batcher, awaited by the ticket
/// holder.
struct Slot {
    done: Mutex<SlotState>,
    cv: Condvar,
}

/// A claim on the logits of one admitted submission.
///
/// Returned immediately by [`Replica::submit`]; redeemed by blocking
/// ([`Ticket::wait`]) or polling ([`Ticket::try_take`]). Every admitted
/// ticket is eventually fulfilled — shutdown drains the queue before the
/// batcher threads exit — so `wait` cannot hang on a live or draining
/// replica. Dropping a ticket abandons the result (the batch still runs).
pub struct Ticket {
    slot: Arc<Slot>,
    trace: Option<TraceId>,
}

impl std::fmt::Debug for Ticket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ticket")
            .field("ready", &self.is_ready())
            .field("trace", &self.trace)
            .finish()
    }
}

impl Ticket {
    /// The request's trace identity, when the serving replica traces and
    /// tracing was enabled at admission.
    pub fn trace_id(&self) -> Option<TraceId> {
        self.trace
    }

    /// Blocks until the logits arrive and returns them.
    ///
    /// # Panics
    ///
    /// Panics if the logits were already redeemed through
    /// [`Ticket::try_take`] — blocking would otherwise hang forever on a
    /// slot that can never be filled again.
    pub fn wait(self) -> Vec<f32> {
        let mut done = self.slot.done.lock().expect("serve slot poisoned");
        loop {
            match std::mem::replace(&mut *done, SlotState::Taken) {
                SlotState::Ready(logits) => return logits,
                SlotState::Taken => panic!("ticket already redeemed via try_take"),
                SlotState::Pending => {
                    *done = SlotState::Pending;
                    done = self.slot.cv.wait(done).expect("serve slot poisoned");
                }
            }
        }
    }

    /// Takes the logits if they have already arrived; `None` otherwise.
    /// A ticket whose logits were taken will never yield them again.
    pub fn try_take(&self) -> Option<Vec<f32>> {
        let mut done = self.slot.done.lock().expect("serve slot poisoned");
        match std::mem::replace(&mut *done, SlotState::Taken) {
            SlotState::Ready(logits) => Some(logits),
            SlotState::Taken => None,
            SlotState::Pending => {
                *done = SlotState::Pending;
                None
            }
        }
    }

    /// Whether the logits have arrived (and were not yet taken).
    pub fn is_ready(&self) -> bool {
        matches!(*self.slot.done.lock().expect("serve slot poisoned"), SlotState::Ready(_))
    }
}

struct QueueState {
    pending: VecDeque<Request>,
    shutdown: bool,
    paused: bool,
}

struct Shared {
    net: Arc<CompiledNet>,
    cfg: ServeConfig,
    queue: Mutex<QueueState>,
    available: Condvar,
    stats: StatsInner,
    clock: Arc<dyn Clock>,
    /// Span sink, when the owner traces this replica. Producers check
    /// `is_enabled` (one relaxed load) before building any span.
    trace: Option<TraceSink>,
    /// The plan's serving-form label, rendered once so per-span stamping
    /// is an `Arc` clone, not a format.
    form_label: Arc<str>,
}

/// One batching replica: a bounded request queue plus batcher threads over
/// a shared compiled plan.
///
/// Many replicas may serve the same `Arc<CompiledNet>` — the plan is
/// frozen and `Sync`, so replication costs only the per-replica scratch
/// and threads, not a weight copy. Submission is thread-safe through
/// `&self`; drop (or [`Replica::shutdown`]) drains the queue — delivering
/// every admitted [`Ticket`] — and joins the batcher threads.
pub struct Replica {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

impl Replica {
    /// Starts batcher threads over a shared compiled plan, timestamping
    /// with a fresh [`MonotonicClock`].
    ///
    /// # Panics
    ///
    /// Panics if `cfg.max_batch`, `cfg.workers` or `cfg.queue_cap` is zero.
    pub fn start(net: Arc<CompiledNet>, cfg: ServeConfig) -> Self {
        Self::start_with_clock(net, cfg, MonotonicClock::shared())
    }

    /// [`Replica::start`] with an explicit time source.
    ///
    /// Production callers pass a shared [`MonotonicClock`] (one per
    /// router, so timestamps are comparable across replicas);
    /// deterministic tests pass a [`VirtualClock`] — all latency and
    /// service-time accounting then moves only when the test advances it.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.max_batch`, `cfg.workers` or `cfg.queue_cap` is zero.
    pub fn start_with_clock(
        net: Arc<CompiledNet>,
        cfg: ServeConfig,
        clock: Arc<dyn Clock>,
    ) -> Self {
        Self::start_inner(net, cfg, clock, None)
    }

    /// [`Replica::start_with_clock`] plus a [`TraceSink`]: every request
    /// admitted while the sink's log is enabled gets a [`TraceId`] and
    /// queued/batched/executed [`SpanRecord`]s stamped with the sink's
    /// replica id. With the log disabled the only cost is one relaxed
    /// load per submission.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.max_batch`, `cfg.workers` or `cfg.queue_cap` is zero.
    pub fn start_traced(
        net: Arc<CompiledNet>,
        cfg: ServeConfig,
        clock: Arc<dyn Clock>,
        sink: TraceSink,
    ) -> Self {
        Self::start_inner(net, cfg, clock, Some(sink))
    }

    fn start_inner(
        net: Arc<CompiledNet>,
        cfg: ServeConfig,
        clock: Arc<dyn Clock>,
        trace: Option<TraceSink>,
    ) -> Self {
        assert!(cfg.max_batch > 0, "max_batch must be positive");
        assert!(cfg.workers > 0, "workers must be positive");
        assert!(cfg.queue_cap > 0, "queue_cap must be positive");
        let form_label: Arc<str> = Arc::from(net.serving_form().to_string().as_str());
        let shared = Arc::new(Shared {
            net,
            cfg,
            queue: Mutex::new(QueueState {
                pending: VecDeque::new(),
                shutdown: false,
                paused: false,
            }),
            available: Condvar::new(),
            stats: StatsInner::with_alpha(cfg.ewma_alpha_pct),
            clock,
            trace,
            form_label,
        });
        let handles = (0..cfg.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("scissor-serve-{i}"))
                    .spawn(move || batcher_loop(&shared))
                    .expect("spawn batcher thread")
            })
            .collect();
        Self { shared, handles }
    }

    /// The compiled plan being served.
    pub fn net(&self) -> &CompiledNet {
        &self.shared.net
    }

    /// A shared handle to the compiled plan (for spawning sibling
    /// replicas).
    pub fn plan(&self) -> Arc<CompiledNet> {
        Arc::clone(&self.shared.net)
    }

    /// The numeric serving form of the plan this replica executes
    /// (`f32` or group-quantized `int8` — fixed when the plan was
    /// compiled).
    pub fn serving_form(&self) -> ServingForm {
        self.shared.net.serving_form()
    }

    /// Submits one sample (a batch-1 tensor) without blocking and returns
    /// its [`Ticket`].
    ///
    /// # Errors
    ///
    /// [`ServeError::ShapeMismatch`] if the sample's `(c, h, w)` differs
    /// from the plan's input shape or the tensor is not batch-1;
    /// [`ServeError::Overloaded`] if the queue is at
    /// [`ServeConfig::queue_cap`]; [`ServeError::ShuttingDown`] after
    /// [`Replica::shutdown`] began.
    pub fn submit(&self, sample: &Tensor4) -> Result<Ticket> {
        let (b, c, h, w) = sample.shape();
        if b != 1 || (c, h, w) != self.shared.net.input_shape() {
            return Err(ServeError::ShapeMismatch {
                expected: self.shared.net.input_shape(),
                got: sample.shape(),
            });
        }
        self.submit_features(sample.as_slice())
    }

    /// Submits one sample as a raw `c·h·w` feature slice without blocking
    /// and returns its [`Ticket`].
    ///
    /// # Errors
    ///
    /// [`ServeError::FeatureLengthMismatch`] if the slice length is not the
    /// plan's `c·h·w`; otherwise as [`Replica::submit`].
    pub fn submit_features(&self, features: &[f32]) -> Result<Ticket> {
        let (c, h, w) = self.shared.net.input_shape();
        if features.len() != c * h * w {
            return Err(ServeError::FeatureLengthMismatch {
                expected: c * h * w,
                got: features.len(),
            });
        }
        let slot = Arc::new(Slot { done: Mutex::new(SlotState::Pending), cv: Condvar::new() });
        let trace;
        {
            let mut queue = self.shared.queue.lock().expect("serve queue poisoned");
            if queue.shutdown {
                return Err(ServeError::ShuttingDown);
            }
            let depth = queue.pending.len();
            if depth >= self.shared.cfg.queue_cap {
                // Shed under the lock so depth/cap in the error are exact.
                self.shared.stats.record_shed();
                return Err(ServeError::Overloaded { depth, cap: self.shared.cfg.queue_cap });
            }
            let enqueued_ns = self.shared.clock.now_ns();
            // Mint the id and record the Queued span under the queue lock:
            // span order then matches admission order exactly, which the
            // VirtualClock determinism suite asserts. The trace mutex is a
            // leaf (never taken while holding it), so no lock-order risk.
            trace = match &self.shared.trace {
                Some(sink) if sink.log.is_enabled() => {
                    let id = sink.log.mint();
                    sink.log.record(SpanRecord {
                        trace: id,
                        kind: SpanKind::Queued,
                        at_ns: enqueued_ns,
                        replica: sink.replica,
                        batch: 0,
                        form: Arc::clone(&self.shared.form_label),
                    });
                    Some(id)
                }
                _ => None,
            };
            queue.pending.push_back(Request {
                features: features.to_vec(),
                enqueued_ns,
                slot: Arc::clone(&slot),
                trace,
            });
            self.shared.stats.set_queue_depth(queue.pending.len() as u64);
        }
        // lint: allow(notify-under-lock): deliberate notify-after-unlock
        // hoist. The condvar lives in the Arc'd `Shared` (kept alive by
        // this handle and every batcher), so it cannot be freed under the
        // notify, and waiters re-check queue state under the lock --
        // unlike the stack-resident Latch this rule exists for.
        self.shared.available.notify_all();
        Ok(Ticket { slot, trace })
    }

    /// Re-admits a request extracted from a dismantled sibling replica
    /// (see [`Replica::dismantle`]). Bypasses [`ServeConfig::queue_cap`] —
    /// the request was already admitted once and its [`Ticket`] must
    /// resolve — and keeps the original enqueue timestamp.
    ///
    /// # Errors
    ///
    /// Hands the request back if this replica is itself shutting down, so
    /// the caller can try another sibling instead of losing the ticket.
    pub fn inject(&self, req: PendingRequest) -> std::result::Result<(), PendingRequest> {
        {
            let mut queue = self.shared.queue.lock().expect("serve queue poisoned");
            if queue.shutdown {
                return Err(req);
            }
            // A rerouted traced request gets a second Queued span on its
            // new replica, timestamped at reroute time (the original
            // admission span keeps the original timestamp).
            if let (Some(id), Some(sink)) = (req.inner.trace, &self.shared.trace) {
                if sink.log.is_enabled() {
                    sink.log.record(SpanRecord {
                        trace: id,
                        kind: SpanKind::Queued,
                        at_ns: self.shared.clock.now_ns(),
                        replica: sink.replica,
                        batch: 0,
                        form: Arc::clone(&self.shared.form_label),
                    });
                }
            }
            queue.pending.push_back(req.inner);
            self.shared.stats.set_queue_depth(queue.pending.len() as u64);
        }
        // lint: allow(notify-under-lock): deliberate notify-after-unlock
        // hoist. The condvar lives in the Arc'd `Shared` (kept alive by
        // this handle and every batcher), so it cannot be freed under the
        // notify, and waiters re-check queue state under the lock --
        // unlike the stack-resident Latch this rule exists for.
        self.shared.available.notify_all();
        Ok(())
    }

    /// Pending (admitted, not yet drained) requests — the value the
    /// bounded-queue check and least-loaded routing read. Lock-free.
    pub fn queue_depth(&self) -> usize {
        self.shared.stats.queue_depth() as usize
    }

    /// Pauses batch processing: batcher threads stop draining the queue
    /// (a batch already in flight completes). Submissions are still
    /// admitted until the queue cap. Used for maintenance windows and for
    /// deterministic overload tests.
    pub fn pause(&self) {
        let mut queue = self.shared.queue.lock().expect("serve queue poisoned");
        queue.paused = true;
    }

    /// Resumes batch processing after [`Replica::pause`].
    pub fn resume(&self) {
        {
            let mut queue = self.shared.queue.lock().expect("serve queue poisoned");
            queue.paused = false;
        }
        // lint: allow(notify-under-lock): deliberate notify-after-unlock
        // hoist. The condvar lives in the Arc'd `Shared` (kept alive by
        // this handle and every batcher), so it cannot be freed under the
        // notify, and waiters re-check queue state under the lock --
        // unlike the stack-resident Latch this rule exists for.
        self.shared.available.notify_all();
    }

    /// Whether batch processing is currently paused — routing policies
    /// must not steer new traffic at a paused replica while an active one
    /// exists.
    pub fn is_paused(&self) -> bool {
        self.shared.queue.lock().expect("serve queue poisoned").paused
    }

    /// Current per-sample service-time EWMA in nanoseconds (`0` until the
    /// first batch lands) — the latency-aware routing signal. Lock-free.
    pub fn ewma_service_ns(&self) -> u64 {
        self.shared.stats.ewma_service_ns()
    }

    /// Clears the service-time EWMA so the estimator re-learns from
    /// scratch (rebalance actuation: a stale estimate should not keep
    /// steering traffic after conditions changed).
    pub fn reset_ewma(&self) {
        self.shared.stats.reset_ewma()
    }

    /// Snapshot of the throughput/latency counters.
    pub fn stats(&self) -> ServeStats {
        self.shared.stats.snapshot()
    }

    /// Stops accepting submissions, drains the queue (delivering every
    /// admitted ticket — a pause is overridden) and joins the batcher
    /// threads. Idempotent; also invoked by `Drop`.
    pub fn shutdown(&mut self) {
        {
            let mut queue = self.shared.queue.lock().expect("serve queue poisoned");
            queue.shutdown = true;
        }
        // lint: allow(notify-under-lock): deliberate notify-after-unlock
        // hoist. The condvar lives in the Arc'd `Shared` (kept alive by
        // this handle and every batcher), so it cannot be freed under the
        // notify, and waiters re-check queue state under the lock --
        // unlike the stack-resident Latch this rule exists for.
        self.shared.available.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }

    /// Tears the replica down **without** serving its backlog: stops
    /// admission, extracts every still-pending request (their tickets
    /// stay live) and joins the batcher threads, returning the extracted
    /// requests for [`Replica::inject`]ion into sibling replicas plus the
    /// replica's final counter snapshot (taken *after* the join, so an
    /// in-flight batch's deliveries are included — a scale-down must not
    /// make a model's cumulative counters go backwards).
    ///
    /// A batch already in flight when this is called completes and
    /// delivers its tickets normally; the extraction happens under the
    /// queue lock *before* the batchers are woken, so a request is either
    /// in the returned set or delivered by this replica — never both,
    /// never neither. This is the scale-down primitive: where `shutdown`
    /// serves the backlog itself before exiting, `dismantle` hands it off
    /// so capacity leaves the pool immediately, even mid-pause.
    pub fn dismantle(mut self) -> Dismantled {
        let pending: Vec<PendingRequest> = {
            let mut queue = self.shared.queue.lock().expect("serve queue poisoned");
            queue.shutdown = true;
            let drained: Vec<PendingRequest> =
                queue.pending.drain(..).map(|inner| PendingRequest { inner }).collect();
            self.shared.stats.set_queue_depth(0);
            drained
        };
        // lint: allow(notify-under-lock): deliberate notify-after-unlock
        // hoist. The condvar lives in the Arc'd `Shared` (kept alive by
        // this handle and every batcher), so it cannot be freed under the
        // notify, and waiters re-check queue state under the lock --
        // unlike the stack-resident Latch this rule exists for.
        self.shared.available.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
        let mut stats = self.shared.stats.snapshot();
        // The EWMA is a routing signal for a live replica, not a counter;
        // a dead replica must not keep steering anything.
        stats.ewma_service_ns = 0;
        Dismantled { pending, stats }
    }
}

impl Drop for Replica {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The single-replica micro-batching inference server.
///
/// A convenience wrapper over one [`Replica`] with a *blocking*
/// [`Server::submit`]; multi-replica, multi-model serving lives in
/// `scissor_router`. Submission is thread-safe through `&self`; drop (or
/// [`Server::shutdown`]) drains the queue and joins the batcher threads.
pub struct Server {
    replica: Replica,
}

impl Server {
    /// Starts batcher threads over a compiled plan.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.max_batch`, `cfg.workers` or `cfg.queue_cap` is zero.
    pub fn start(net: CompiledNet, cfg: ServeConfig) -> Self {
        Self { replica: Replica::start(Arc::new(net), cfg) }
    }

    /// The compiled plan being served.
    pub fn net(&self) -> &CompiledNet {
        self.replica.net()
    }

    /// The underlying batching replica (async submission, pause/resume,
    /// queue depth).
    pub fn replica(&self) -> &Replica {
        &self.replica
    }

    /// The numeric serving form of the plan being served.
    pub fn serving_form(&self) -> ServingForm {
        self.replica.serving_form()
    }

    /// Submits one sample (a batch-1 tensor) and blocks until its logits
    /// return.
    ///
    /// # Errors
    ///
    /// [`ServeError::ShapeMismatch`] if the sample's `(c, h, w)` differs
    /// from the plan's input shape or the tensor is not batch-1;
    /// [`ServeError::Overloaded`] if a finite
    /// [`ServeConfig::queue_cap`] is exceeded;
    /// [`ServeError::ShuttingDown`] after [`Server::shutdown`] began.
    pub fn submit(&self, sample: &Tensor4) -> Result<Vec<f32>> {
        Ok(self.replica.submit(sample)?.wait())
    }

    /// Submits one sample as a raw `c·h·w` feature slice and blocks until
    /// its logits return.
    ///
    /// # Errors
    ///
    /// [`ServeError::FeatureLengthMismatch`] if the slice length is not the
    /// plan's `c·h·w`; otherwise as [`Server::submit`].
    pub fn submit_features(&self, features: &[f32]) -> Result<Vec<f32>> {
        Ok(self.replica.submit_features(features)?.wait())
    }

    /// Snapshot of the throughput/latency counters.
    pub fn stats(&self) -> ServeStats {
        self.replica.stats()
    }

    /// Stops accepting submissions, drains the queue and joins the batcher
    /// threads. Idempotent; also invoked by `Drop`.
    pub fn shutdown(&mut self) {
        self.replica.shutdown();
    }
}

/// One batcher thread: collect → infer → fan out, forever.
fn batcher_loop(shared: &Shared) {
    let (c, h, w) = shared.net.input_shape();
    // Pre-size the scratch at the largest batch this replica will ever
    // form, so even the first served request runs the allocation-free
    // warm path.
    let mut scratch = shared.net.warm_scratch(shared.cfg.max_batch);
    let mut batch_input = Tensor4::zeros(0, c, h, w);
    let mut guard = shared.queue.lock().expect("serve queue poisoned");
    loop {
        if guard.paused && !guard.shutdown {
            guard = shared.available.wait(guard).expect("serve queue poisoned");
            continue;
        }
        if guard.pending.is_empty() {
            if guard.shutdown {
                return;
            }
            guard = shared.available.wait(guard).expect("serve queue poisoned");
            continue;
        }
        // A batch is forming: wait for co-riders until it is full, the
        // oldest sample's wait budget runs out, or shutdown/pause begins.
        // The deadline is recomputed from the *current* front each
        // iteration — with several workers, another batcher may drain the
        // request the previous deadline was keyed to, and a fresh arrival
        // deserves its own full coalescing window, not a stale (possibly
        // expired) one. Deadlines are clock timestamps; under a
        // `VirtualClock` the condvar still sleeps real `remaining` spans,
        // so deterministic virtual-time suites run with `max_wait: ZERO`
        // (no coalescing window to wait out).
        while guard.pending.len() < shared.cfg.max_batch && !guard.shutdown && !guard.paused {
            let front = match guard.pending.front() {
                Some(req) => req,
                // Another worker drained the queue while we slept.
                None => break,
            };
            let deadline_ns = front
                .enqueued_ns
                .saturating_add(u64::try_from(shared.cfg.max_wait.as_nanos()).unwrap_or(u64::MAX));
            let now_ns = shared.clock.now_ns();
            if now_ns >= deadline_ns {
                break;
            }
            let remaining = Duration::from_nanos(deadline_ns - now_ns);
            let (g, _timeout) =
                shared.available.wait_timeout(guard, remaining).expect("serve queue poisoned");
            guard = g;
        }
        // Paused mid-coalesce: leave the queue alone until resumed (the
        // shutdown drain overrides a pause).
        if guard.paused && !guard.shutdown {
            continue;
        }
        // The queue may have been drained entirely while we slept.
        if guard.pending.is_empty() {
            continue;
        }
        let take = guard.pending.len().min(shared.cfg.max_batch);
        let batch: Vec<Request> = guard.pending.drain(..take).collect();
        shared.stats.set_queue_depth(guard.pending.len() as u64);
        drop(guard);

        run_batch(shared, &batch, &mut batch_input, &mut scratch, take);

        guard = shared.queue.lock().expect("serve queue poisoned");
    }
}

/// Assembles a drained batch, runs the forward pass and fans the logits
/// back out to the waiting tickets.
fn run_batch(
    shared: &Shared,
    batch: &[Request],
    batch_input: &mut Tensor4,
    scratch: &mut scissor_nn::InferScratch,
    take: usize,
) {
    let (c, h, w) = shared.net.input_shape();
    batch_input.resize(take, c, h, w);
    for (i, req) in batch.iter().enumerate() {
        batch_input.sample_mut(i).copy_from_slice(&req.features);
    }
    let infer_start_ns = shared.clock.now_ns();
    let logits = shared.net.infer_into(batch_input, scratch);
    let infer_ns = shared.clock.now_ns().saturating_sub(infer_start_ns);

    // Record every counter BEFORE waking any ticket holder: a caller that
    // reads `stats()` right after its `wait` returns must see its own
    // request and its batch fully accounted.
    let now_ns = shared.clock.now_ns();
    for req in batch {
        shared.stats.record_request(now_ns.saturating_sub(req.enqueued_ns));
    }
    shared.stats.record_batch(take as u64, take == shared.cfg.max_batch, infer_ns);

    // Span recording follows the same rule as the counters above: all
    // spans land before any ticket holder wakes, so a caller that reads
    // the trace log right after `wait` returns sees its own request's
    // full lifecycle.
    if let Some(sink) = &shared.trace {
        if sink.log.is_enabled() {
            for req in batch {
                let Some(id) = req.trace else { continue };
                sink.log.record(SpanRecord {
                    trace: id,
                    kind: SpanKind::Batched,
                    at_ns: infer_start_ns,
                    replica: sink.replica,
                    batch: take,
                    form: Arc::clone(&shared.form_label),
                });
                sink.log.record(SpanRecord {
                    trace: id,
                    kind: SpanKind::Executed,
                    at_ns: now_ns,
                    replica: sink.replica,
                    batch: take,
                    form: Arc::clone(&shared.form_label),
                });
            }
        }
    }

    for (i, req) in batch.iter().enumerate() {
        // Fill under the slot lock and notify before releasing it, so the
        // ticket holder cannot observe the fill and deallocate the slot
        // between the two.
        let mut done = req.slot.done.lock().expect("serve slot poisoned");
        *done = SlotState::Ready(logits.row(i).to_vec());
        req.slot.cv.notify_all();
        drop(done);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use scissor_nn::NetworkBuilder;

    fn tiny_plan() -> CompiledNet {
        let mut rng = StdRng::seed_from_u64(11);
        NetworkBuilder::new((1, 4, 4))
            .conv("conv1", 2, 3, 1, 0, &mut rng)
            .relu()
            .linear("fc", 3, &mut rng)
            .build()
            .compile()
            .expect("compile")
    }

    fn sample(seed: usize) -> Tensor4 {
        Tensor4::from_vec(
            1,
            1,
            4,
            4,
            (0..16).map(|i| ((i * 7 + seed * 13) % 23) as f32 * 0.1 - 1.0).collect(),
        )
    }

    #[test]
    fn submit_returns_compiled_logits() {
        let plan = tiny_plan();
        let expect = plan.infer(&sample(0));
        let server = Server::start(tiny_plan(), ServeConfig::default());
        let got = server.submit(&sample(0)).unwrap();
        assert_eq!(got.as_slice(), expect.as_slice());
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let server = Server::start(tiny_plan(), ServeConfig::default());
        let bad = Tensor4::zeros(1, 1, 5, 5);
        assert!(matches!(server.submit(&bad), Err(ServeError::ShapeMismatch { .. })));
        let two = Tensor4::zeros(2, 1, 4, 4);
        assert!(matches!(server.submit(&two), Err(ServeError::ShapeMismatch { .. })));
        assert!(matches!(
            server.submit_features(&[0.0; 3]),
            Err(ServeError::FeatureLengthMismatch { expected: 16, got: 3 })
        ));
    }

    #[test]
    fn shutdown_rejects_new_submissions() {
        let mut server = Server::start(tiny_plan(), ServeConfig::default());
        server.shutdown();
        assert!(matches!(server.submit(&sample(0)), Err(ServeError::ShuttingDown)));
        // Idempotent.
        server.shutdown();
    }

    #[test]
    fn stats_count_requests_and_batches() {
        let server = Server::start(
            tiny_plan(),
            ServeConfig {
                max_batch: 4,
                max_wait: Duration::from_millis(1),
                ..ServeConfig::default()
            },
        );
        for s in 0..5 {
            server.submit(&sample(s)).unwrap();
        }
        let stats = server.stats();
        assert_eq!(stats.requests, 5);
        assert_eq!(stats.samples, 5);
        assert!(stats.batches >= 1 && stats.batches <= 5);
        assert!(stats.mean_batch_size() >= 1.0);
        assert!(stats.max_latency >= stats.mean_latency());
        assert_eq!(stats.shed, 0);
        assert_eq!(stats.queue_depth, 0, "all requests delivered → queue empty");
        assert_eq!(stats.latency_hist.iter().sum::<u64>(), 5);
        assert!(stats.p50_latency() <= stats.p99_latency());
    }

    #[test]
    fn ticket_try_take_and_wait() {
        let plan = tiny_plan();
        let expect = plan.infer(&sample(4));
        let replica = Replica::start(Arc::new(tiny_plan()), ServeConfig::default());
        let ticket = replica.submit(&sample(4)).unwrap();
        // Poll until ready, then take without blocking.
        let got = loop {
            if let Some(v) = ticket.try_take() {
                break v;
            }
            std::thread::yield_now();
        };
        assert_eq!(got.as_slice(), expect.as_slice());
        assert!(!ticket.is_ready(), "taken logits are gone");
        assert!(ticket.try_take().is_none());
        // wait() path on a second ticket.
        let got = replica.submit(&sample(4)).unwrap().wait();
        assert_eq!(got.as_slice(), expect.as_slice());
    }

    #[test]
    #[should_panic(expected = "already redeemed")]
    fn wait_after_try_take_panics_instead_of_hanging() {
        let replica = Replica::start(Arc::new(tiny_plan()), ServeConfig::default());
        let ticket = replica.submit(&sample(1)).unwrap();
        loop {
            if ticket.try_take().is_some() {
                break;
            }
            std::thread::yield_now();
        }
        // The logits are gone; blocking would hang forever, so this must
        // fail loudly instead.
        let _ = ticket.wait();
    }

    #[test]
    fn paused_replica_admits_until_cap_then_sheds() {
        let replica = Replica::start(
            Arc::new(tiny_plan()),
            ServeConfig { queue_cap: 3, ..ServeConfig::default() },
        );
        replica.pause();
        let tickets: Vec<Ticket> =
            (0..3).map(|s| replica.submit(&sample(s)).expect("admitted")).collect();
        assert_eq!(replica.queue_depth(), 3);
        // Queue is at the high-water mark: the next submission sheds.
        match replica.submit(&sample(9)) {
            Err(ServeError::Overloaded { depth: 3, cap: 3 }) => {}
            other => panic!("expected Overloaded, got {other:?}"),
        }
        assert_eq!(replica.stats().shed, 1);
        // Resume: every admitted ticket is delivered with exact logits.
        replica.resume();
        let reference = tiny_plan();
        for (s, t) in tickets.into_iter().enumerate() {
            let want = reference.infer(&sample(s));
            assert_eq!(t.wait().as_slice(), want.as_slice(), "ticket {s}");
        }
        assert_eq!(replica.queue_depth(), 0);
    }

    #[test]
    fn shutdown_drains_admitted_tickets_even_when_paused() {
        let mut replica = Replica::start(Arc::new(tiny_plan()), ServeConfig::default());
        replica.pause();
        let tickets: Vec<Ticket> =
            (0..4).map(|s| replica.submit(&sample(s)).expect("admitted")).collect();
        assert_eq!(replica.queue_depth(), 4);
        // Shutdown overrides the pause and drains everything admitted.
        replica.shutdown();
        let reference = tiny_plan();
        for (s, t) in tickets.into_iter().enumerate() {
            let want = reference.infer(&sample(s));
            assert_eq!(t.wait().as_slice(), want.as_slice(), "ticket {s}");
        }
        assert!(matches!(replica.submit(&sample(0)), Err(ServeError::ShuttingDown)));
    }

    #[test]
    fn tiled_plan_serves_identical_logits_through_the_batcher() {
        use scissor_nn::TileConfig;
        // Force aggressive tiling (sub-batches of 2 under a max_batch of
        // 8): coalesced batches run the tiled path and every ticket must
        // still receive the exact logits an untiled pass produces.
        let reference = tiny_plan();
        let mut tiled = tiny_plan();
        tiled.set_tile_config(TileConfig::fixed(2));
        let replica = Replica::start(
            Arc::new(tiled),
            ServeConfig {
                max_batch: 8,
                max_wait: Duration::from_millis(5),
                ..ServeConfig::default()
            },
        );
        replica.pause();
        let tickets: Vec<Ticket> =
            (0..8).map(|s| replica.submit(&sample(s)).expect("admitted")).collect();
        replica.resume();
        for (s, t) in tickets.into_iter().enumerate() {
            let want = reference.infer(&sample(s));
            assert_eq!(t.wait().as_slice(), want.as_slice(), "sample {s}");
        }
    }

    #[test]
    fn dismantle_hands_pending_to_a_sibling_same_tickets() {
        let plan = Arc::new(tiny_plan());
        let a = Replica::start(Arc::clone(&plan), ServeConfig::default());
        let b = Replica::start(Arc::clone(&plan), ServeConfig::default());
        a.pause();
        b.pause();
        let tickets: Vec<Ticket> =
            (0..5).map(|s| a.submit(&sample(s)).expect("admitted")).collect();
        assert_eq!(a.queue_depth(), 5);
        // Tear a down mid-pause: its backlog moves to b, tickets intact.
        let torn = a.dismantle();
        assert_eq!(torn.pending.len(), 5);
        assert_eq!(torn.stats.requests, 0, "paused: nothing delivered before teardown");
        assert_eq!(torn.stats.queue_depth, 0, "extracted backlog left the gauge");
        for req in torn.pending {
            b.inject(req).expect("sibling accepts");
        }
        assert_eq!(b.queue_depth(), 5);
        assert!(tickets.iter().all(|t| !t.is_ready()), "nothing served while paused");
        b.resume();
        let reference = tiny_plan();
        for (s, t) in tickets.into_iter().enumerate() {
            assert_eq!(t.wait().as_slice(), reference.infer(&sample(s)).as_slice(), "ticket {s}");
        }
        assert_eq!(b.stats().requests, 5, "the sibling served the rerouted backlog");
    }

    #[test]
    fn inject_bypasses_the_queue_cap_and_bounces_off_shutdown() {
        let plan = Arc::new(tiny_plan());
        let a = Replica::start(Arc::clone(&plan), ServeConfig::default());
        let b = Replica::start(
            Arc::clone(&plan),
            ServeConfig { queue_cap: 1, ..ServeConfig::default() },
        );
        a.pause();
        b.pause();
        let _own = b.submit(&sample(9)).expect("fills b to its cap");
        let tickets: Vec<Ticket> =
            (0..3).map(|s| a.submit(&sample(s)).expect("admitted")).collect();
        // b is at cap, but rerouted requests were already admitted once:
        // they must land anyway (zero lost tickets beats the cap).
        for req in a.dismantle().pending {
            b.inject(req).expect("cap does not apply to rerouted requests");
        }
        assert_eq!(b.queue_depth(), 4);
        b.resume();
        let reference = tiny_plan();
        for (s, t) in tickets.into_iter().enumerate() {
            assert_eq!(t.wait().as_slice(), reference.infer(&sample(s)).as_slice(), "ticket {s}");
        }
        // A shutting-down replica hands the request back instead of
        // swallowing it.
        let c = Replica::start(Arc::clone(&plan), ServeConfig::default());
        c.pause();
        let t = c.submit(&sample(7)).expect("admitted");
        let mut d = Replica::start(Arc::clone(&plan), ServeConfig::default());
        d.shutdown();
        let mut bounced = Vec::new();
        for req in c.dismantle().pending {
            bounced.push(d.inject(req).expect_err("shut-down replica must refuse"));
        }
        assert_eq!(bounced.len(), 1);
        let e = Replica::start(Arc::clone(&plan), ServeConfig::default());
        for req in bounced {
            e.inject(req).expect("live replica accepts the bounced request");
        }
        assert_eq!(t.wait().as_slice(), reference.infer(&sample(7)).as_slice());
    }

    #[test]
    fn virtual_clock_freezes_latency_accounting() {
        let clock = VirtualClock::shared();
        let replica = Replica::start_with_clock(
            Arc::new(tiny_plan()),
            ServeConfig { max_wait: Duration::ZERO, ..ServeConfig::default() },
            Arc::clone(&clock) as Arc<dyn Clock>,
        );
        replica.pause();
        let t0 = replica.submit(&sample(0)).unwrap();
        clock.advance(Duration::from_millis(3));
        let t1 = replica.submit(&sample(1)).unwrap();
        replica.resume();
        t0.wait();
        t1.wait();
        let stats = replica.stats();
        // All time flowed through the virtual clock: the first request
        // aged exactly the scripted 3 ms, the second not at all, and the
        // measured infer time is zero (the clock never moved during it).
        assert_eq!(stats.max_latency, Duration::from_millis(3));
        assert_eq!(stats.latency_sum, Duration::from_millis(3));
        assert_eq!(stats.infer_time, Duration::ZERO);
        assert_eq!(stats.ewma_service_ns, 0);
        assert_eq!(replica.ewma_service_ns(), 0);
    }

    #[test]
    fn ewma_surfaces_and_resets_through_the_replica() {
        let replica = Replica::start(Arc::new(tiny_plan()), ServeConfig::default());
        assert_eq!(replica.ewma_service_ns(), 0);
        assert!(!replica.is_paused());
        replica.submit(&sample(0)).unwrap().wait();
        assert!(replica.ewma_service_ns() > 0, "a real batch seeds the estimator");
        replica.reset_ewma();
        assert_eq!(replica.ewma_service_ns(), 0);
        replica.pause();
        assert!(replica.is_paused());
        replica.resume();
        assert!(!replica.is_paused());
    }

    #[test]
    fn replicas_share_one_plan() {
        let plan = Arc::new(tiny_plan());
        let a = Replica::start(Arc::clone(&plan), ServeConfig::default());
        let b = Replica::start(a.plan(), ServeConfig::default());
        let expect = plan.infer(&sample(2));
        assert_eq!(a.submit(&sample(2)).unwrap().wait().as_slice(), expect.as_slice());
        assert_eq!(b.submit(&sample(2)).unwrap().wait().as_slice(), expect.as_slice());
        // Three handles to one frozen plan: the two replicas and ours.
        assert_eq!(Arc::strong_count(&plan), 3);
    }
}
