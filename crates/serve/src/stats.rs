//! Lock-free throughput/latency counters for the batching server.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of latency histogram buckets.
///
/// Bucket `i` (for `i > 0`) counts requests whose submit→delivery latency
/// in nanoseconds has bit length `i`, i.e. lies in `[2^(i-1), 2^i)`;
/// bucket 0 counts zero-latency requests. 40 buckets cover up to
/// `2^39 ns ≈ 9.2 min`, with everything slower clamped into the top
/// bucket.
pub const LATENCY_BUCKETS: usize = 40;

/// Maps a latency in nanoseconds to its histogram bucket.
fn latency_bucket(ns: u64) -> usize {
    ((u64::BITS - ns.leading_zeros()) as usize).min(LATENCY_BUCKETS - 1)
}

/// Upper bound (exclusive, in nanoseconds) of latency-histogram bucket
/// `i`, or `None` for the top bucket — it absorbs everything from
/// `2^(LATENCY_BUCKETS-2)` ns up, so it has no true upper bound and
/// reporting `2^39` for it would silently understate slow tails.
/// Bucket 0 counts exact zero-latency requests (bound 1 ns).
pub fn bucket_upper_ns(i: usize) -> Option<u64> {
    if i >= LATENCY_BUCKETS - 1 {
        None
    } else if i == 0 {
        Some(1)
    } else {
        Some(1u64 << i)
    }
}

/// Default smoothing factor for the per-replica service-time EWMA, in
/// percent (`20` ⇒ α = 0.2: each new batch contributes a fifth of the
/// estimate — responsive to drift, robust to one-off stalls).
pub const DEFAULT_EWMA_ALPHA_PCT: u8 = 20;

/// An exponentially-weighted moving average: `v' = α·x + (1−α)·v`, with
/// `α` fixed at construction as a percentage in `[1, 100]`.
///
/// The estimator the latency-aware router routes on. Its two contracts
/// (property-tested in `tests/ewma_prop.rs`):
///
/// * the estimate always lies within the closed min/max envelope of the
///   observations so far (α = 100 degenerates to "latest sample");
/// * on constant input it converges monotonically toward that constant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ewma {
    alpha_pct: u8,
    value: Option<f64>,
}

impl Ewma {
    /// A fresh estimator with smoothing `alpha_pct` clamped to `[1, 100]`.
    pub fn new(alpha_pct: u8) -> Self {
        Self { alpha_pct: alpha_pct.clamp(1, 100), value: None }
    }

    /// Folds one observation in and returns the updated estimate. The
    /// first observation seeds the estimate exactly.
    pub fn update(&mut self, x: f64) -> f64 {
        let alpha = f64::from(self.alpha_pct) / 100.0;
        let v = match self.value {
            None => x,
            Some(v) => alpha * x + (1.0 - alpha) * v,
        };
        self.value = Some(v);
        v
    }

    /// The current estimate; `None` before any observation.
    pub fn value(&self) -> Option<f64> {
        self.value
    }
}

/// Internal atomic counters, updated by the batcher threads.
pub(crate) struct StatsInner {
    requests: AtomicU64,
    batches: AtomicU64,
    samples: AtomicU64,
    full_batches: AtomicU64,
    shed: AtomicU64,
    queue_depth: AtomicU64,
    latency_ns_sum: AtomicU64,
    latency_ns_max: AtomicU64,
    infer_ns_sum: AtomicU64,
    latency_hist: [AtomicU64; LATENCY_BUCKETS],
    /// Per-sample service-time EWMA as f64 bits; `0` = no batch yet (a
    /// genuine 0.0 estimate is stored as `-0.0` bits, numerically equal).
    ewma_service_bits: AtomicU64,
    ewma_alpha_pct: u8,
}

impl Default for StatsInner {
    fn default() -> Self {
        Self::with_alpha(DEFAULT_EWMA_ALPHA_PCT)
    }
}

impl StatsInner {
    pub(crate) fn with_alpha(ewma_alpha_pct: u8) -> Self {
        Self {
            requests: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            samples: AtomicU64::new(0),
            full_batches: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            queue_depth: AtomicU64::new(0),
            latency_ns_sum: AtomicU64::new(0),
            latency_ns_max: AtomicU64::new(0),
            infer_ns_sum: AtomicU64::new(0),
            latency_hist: std::array::from_fn(|_| AtomicU64::new(0)),
            ewma_service_bits: AtomicU64::new(0),
            ewma_alpha_pct: ewma_alpha_pct.clamp(1, 100),
        }
    }

    // ordering: Relaxed — independent stat accumulators; the snapshot
    // path documents and tolerates cross-field tearing.
    pub(crate) fn record_request(&self, latency_ns: u64) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.latency_ns_sum.fetch_add(latency_ns, Ordering::Relaxed);
        self.latency_ns_max.fetch_max(latency_ns, Ordering::Relaxed);
        self.latency_hist[latency_bucket(latency_ns)].fetch_add(1, Ordering::Relaxed);
    }

    // ordering: Relaxed — independent stat accumulators; see `snapshot`
    // for the tearing discussion.
    pub(crate) fn record_batch(&self, size: u64, full: bool, infer_ns: u64) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.samples.fetch_add(size, Ordering::Relaxed);
        if full {
            self.full_batches.fetch_add(1, Ordering::Relaxed);
        }
        self.infer_ns_sum.fetch_add(infer_ns, Ordering::Relaxed);
        if size > 0 {
            self.record_service(infer_ns as f64 / size as f64);
        }
    }

    /// Folds one per-sample service-time observation into the EWMA with a
    /// CAS loop (several batcher threads may land batches concurrently).
    // ordering: Relaxed — the CAS loop only needs atomicity of the
    // single u64 cell (lost-update prevention); the EWMA value is
    // self-contained and readers take any recent estimate.
    fn record_service(&self, per_sample_ns: f64) {
        let alpha_pct = self.ewma_alpha_pct;
        let _ = self.ewma_service_bits.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
            let mut e = Ewma {
                alpha_pct,
                value: if bits == 0 { None } else { Some(f64::from_bits(bits)) },
            };
            let v = e.update(per_sample_ns);
            Some(if v == 0.0 { (-0.0f64).to_bits() } else { v.to_bits() })
        });
    }

    /// Current per-sample service-time EWMA in nanoseconds (rounded);
    /// `0` until the first batch lands. Lock-free.
    // ordering: Relaxed — self-contained estimate; see `record_service`.
    pub(crate) fn ewma_service_ns(&self) -> u64 {
        let bits = self.ewma_service_bits.load(Ordering::Relaxed);
        if bits == 0 {
            0
        } else {
            f64::from_bits(bits).round().max(0.0) as u64
        }
    }

    /// Clears the service-time EWMA so the estimator re-learns from
    /// scratch (a rebalance actuation: stale estimates should not keep
    /// steering traffic after conditions changed).
    // ordering: Relaxed — see `record_service`: the cell is
    // self-contained; a racing CAS may legitimately land after the reset.
    pub(crate) fn reset_ewma(&self) {
        self.ewma_service_bits.store(0, Ordering::Relaxed);
    }

    // ordering: Relaxed — stat counter.
    pub(crate) fn record_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Sets the queue-depth gauge; called while the queue lock is held so
    /// the gauge tracks the queue exactly at mutation points.
    // ordering: Relaxed — writers are serialized by the queue lock; the
    // lock-free readers (routing heuristics) accept any recent depth.
    pub(crate) fn set_queue_depth(&self, depth: u64) {
        self.queue_depth.store(depth, Ordering::Relaxed);
    }

    /// Current queue-depth gauge (cheap, lock-free read).
    // ordering: Relaxed — see `set_queue_depth`; advisory gauge read.
    pub(crate) fn queue_depth(&self) -> u64 {
        self.queue_depth.load(Ordering::Relaxed)
    }

    // ordering: Relaxed — statistical snapshot; the comment below spells
    // out the tolerated cross-field tearing.
    pub(crate) fn snapshot(&self) -> ServeStats {
        // Counters are read individually (no global lock), so a snapshot
        // taken mid-batch can tear — e.g. observe a batch's `full_batches`
        // increment but not its `batches` increment. Reading
        // `full_batches` before `batches` (the reverse of record_batch's
        // increment order) makes that unlikely, but Relaxed ordering
        // guarantees nothing across variables: `timeout_batches`
        // saturates, which is the actual guard.
        let full_batches = self.full_batches.load(Ordering::Relaxed);
        let batches = self.batches.load(Ordering::Relaxed);
        ServeStats {
            requests: self.requests.load(Ordering::Relaxed),
            batches,
            samples: self.samples.load(Ordering::Relaxed),
            full_batches,
            shed: self.shed.load(Ordering::Relaxed),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            latency_sum: Duration::from_nanos(self.latency_ns_sum.load(Ordering::Relaxed)),
            max_latency: Duration::from_nanos(self.latency_ns_max.load(Ordering::Relaxed)),
            infer_time: Duration::from_nanos(self.infer_ns_sum.load(Ordering::Relaxed)),
            latency_hist: std::array::from_fn(|i| self.latency_hist[i].load(Ordering::Relaxed)),
            ewma_service_ns: self.ewma_service_ns(),
        }
    }
}

/// A point-in-time snapshot of a server's counters.
///
/// Counters are cumulative since [`crate::Replica::start`]. The snapshot is
/// taken counter-by-counter without a global lock, so totals may be a few
/// in-flight requests apart from each other under load.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeStats {
    /// Requests whose logits have been delivered.
    pub requests: u64,
    /// Forward passes executed.
    pub batches: u64,
    /// Samples carried across all forward passes (= delivered requests).
    pub samples: u64,
    /// Batches flushed because they reached `max_batch` (the rest flushed
    /// on the `max_wait` timeout or shutdown drain).
    pub full_batches: u64,
    /// Submissions rejected because the bounded queue was at capacity.
    pub shed: u64,
    /// Queue depth (pending, not-yet-drained requests) at snapshot time —
    /// a gauge, not a cumulative counter.
    pub queue_depth: u64,
    /// Summed submit→delivery latency across requests.
    pub latency_sum: Duration,
    /// Worst single-request submit→delivery latency.
    pub max_latency: Duration,
    /// Time spent inside `CompiledNet::infer_into`.
    pub infer_time: Duration,
    /// Fixed log₂-bucket latency histogram: bucket `i > 0` counts requests
    /// with latency in `[2^(i-1), 2^i)` ns (bucket 0: zero latency; the
    /// top bucket absorbs everything slower than its lower bound).
    pub latency_hist: [u64; LATENCY_BUCKETS],
    /// Per-sample service-time EWMA in nanoseconds (`infer_time` of each
    /// batch divided by its size, exponentially smoothed) — the signal
    /// latency-aware routing scores replicas by. `0` until the first
    /// batch lands; a gauge, not a cumulative counter.
    pub ewma_service_ns: u64,
}

impl ServeStats {
    /// Mean realized batch size.
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.samples as f64 / self.batches as f64
        }
    }

    /// Mean submit→delivery latency.
    pub fn mean_latency(&self) -> Duration {
        if self.requests == 0 {
            Duration::ZERO
        } else {
            // Divide in u128 nanoseconds: a u32 cast of `requests` would
            // truncate (and could divide by zero) past 2³² requests.
            Duration::from_nanos((self.latency_sum.as_nanos() / self.requests as u128) as u64)
        }
    }

    /// The latency quantile `q ∈ [0, 1]` read off the fixed-bucket
    /// histogram, reported as the containing bucket's upper bound (clamped
    /// to [`ServeStats::max_latency`], which also bounds every quantile) —
    /// with log₂ buckets the true quantile is at most 2× smaller. A
    /// quantile landing in the unbounded top bucket reports
    /// `max_latency` itself — the bucket has no true upper bound
    /// ([`bucket_upper_ns`] returns `None`), and reporting its lower
    /// bound's neighbor `2^39 ns` would understate a slow tail. Returns
    /// `Duration::ZERO` when no request has been recorded.
    pub fn latency_percentile(&self, q: f64) -> Duration {
        let total: u64 = self.latency_hist.iter().sum();
        if total == 0 {
            return Duration::ZERO;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, &count) in self.latency_hist.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return match bucket_upper_ns(i) {
                    Some(upper) => Duration::from_nanos(upper).min(self.max_latency),
                    None => self.max_latency,
                };
            }
        }
        self.max_latency
    }

    /// Median submit→delivery latency (histogram bucket upper bound).
    pub fn p50_latency(&self) -> Duration {
        self.latency_percentile(0.50)
    }

    /// 95th-percentile submit→delivery latency.
    pub fn p95_latency(&self) -> Duration {
        self.latency_percentile(0.95)
    }

    /// 99th-percentile submit→delivery latency.
    pub fn p99_latency(&self) -> Duration {
        self.latency_percentile(0.99)
    }

    /// 99.9th-percentile submit→delivery latency — the tail the
    /// observability snapshot reports (at ≥1000 requests it resolves
    /// beyond p99; below that it reads as the max-ish tail).
    pub fn p999_latency(&self) -> Duration {
        self.latency_percentile(0.999)
    }

    /// Batches flushed by the `max_wait` timer (or the shutdown drain)
    /// rather than by filling up.
    pub fn timeout_batches(&self) -> u64 {
        self.batches.saturating_sub(self.full_batches)
    }

    /// Delivered samples per second of inference time (the compute-bound
    /// throughput ceiling; end-to-end throughput also includes queueing).
    pub fn infer_throughput(&self) -> f64 {
        let secs = self.infer_time.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.samples as f64 / secs
        }
    }

    /// Merges another snapshot into this one (counters add; gauges add —
    /// the merged `queue_depth` is the cluster-wide backlog; `max_latency`
    /// and `ewma_service_ns` take the max: the merged view reports the
    /// *slowest* replica's estimate, the one an autoscaler cares about).
    /// Used to aggregate per-replica stats into a per-model view.
    pub fn merge(&mut self, other: &ServeStats) {
        self.ewma_service_ns = self.ewma_service_ns.max(other.ewma_service_ns);
        self.requests += other.requests;
        self.batches += other.batches;
        self.samples += other.samples;
        self.full_batches += other.full_batches;
        self.shed += other.shed;
        self.queue_depth += other.queue_depth;
        self.latency_sum += other.latency_sum;
        self.max_latency = self.max_latency.max(other.max_latency);
        self.infer_time += other.infer_time;
        for (a, b) in self.latency_hist.iter_mut().zip(other.latency_hist.iter()) {
            *a += b;
        }
    }

    /// An all-zero snapshot (the identity for [`ServeStats::merge`]).
    pub fn zero() -> Self {
        ServeStats {
            requests: 0,
            batches: 0,
            samples: 0,
            full_batches: 0,
            shed: 0,
            queue_depth: 0,
            latency_sum: Duration::ZERO,
            max_latency: Duration::ZERO,
            infer_time: Duration::ZERO,
            latency_hist: [0; LATENCY_BUCKETS],
            ewma_service_ns: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_recorded_events() {
        let inner = StatsInner::default();
        inner.record_request(1_000);
        inner.record_request(3_000);
        inner.record_batch(2, true, 500);
        inner.record_batch(1, false, 250);
        inner.record_request(2_000);
        let s = inner.snapshot();
        assert_eq!(s.requests, 3);
        assert_eq!(s.batches, 2);
        assert_eq!(s.samples, 3);
        assert_eq!(s.full_batches, 1);
        assert_eq!(s.shed, 0);
        assert_eq!(s.timeout_batches(), 1);
        assert_eq!(s.max_latency, Duration::from_nanos(3_000));
        assert_eq!(s.mean_latency(), Duration::from_nanos(2_000));
        assert!((s.mean_batch_size() - 1.5).abs() < 1e-12);
        assert!(s.infer_throughput() > 0.0);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = StatsInner::default().snapshot();
        assert_eq!(s.mean_batch_size(), 0.0);
        assert_eq!(s.mean_latency(), Duration::ZERO);
        assert_eq!(s.infer_throughput(), 0.0);
        assert_eq!(s.latency_percentile(0.5), Duration::ZERO);
        assert_eq!(s, ServeStats::zero());
    }

    #[test]
    fn shed_and_depth_counters() {
        let inner = StatsInner::default();
        inner.record_shed();
        inner.record_shed();
        inner.set_queue_depth(7);
        let s = inner.snapshot();
        assert_eq!(s.shed, 2);
        assert_eq!(s.queue_depth, 7);
        assert_eq!(inner.queue_depth(), 7);
    }

    #[test]
    fn latency_buckets_are_log2() {
        assert_eq!(latency_bucket(0), 0);
        assert_eq!(latency_bucket(1), 1);
        assert_eq!(latency_bucket(2), 2);
        assert_eq!(latency_bucket(3), 2);
        assert_eq!(latency_bucket(4), 3);
        assert_eq!(latency_bucket(1 << 38), LATENCY_BUCKETS - 1);
        // Past the top bucket everything clamps.
        assert_eq!(latency_bucket(u64::MAX), LATENCY_BUCKETS - 1);
        assert_eq!(bucket_upper_ns(0), Some(1));
        assert_eq!(bucket_upper_ns(3), Some(8));
        // The top bucket is unbounded: it has no honest upper bound.
        assert_eq!(bucket_upper_ns(LATENCY_BUCKETS - 1), None);
        assert_eq!(bucket_upper_ns(LATENCY_BUCKETS - 2), Some(1u64 << (LATENCY_BUCKETS - 2)));
    }

    #[test]
    fn percentiles_read_off_the_histogram() {
        let inner = StatsInner::default();
        // 90 fast requests (~1 µs), 9 at ~1 ms, 1 at ~1 s.
        for _ in 0..90 {
            inner.record_request(1_000);
        }
        for _ in 0..9 {
            inner.record_request(1_000_000);
        }
        inner.record_request(1_000_000_000);
        let s = inner.snapshot();
        // Bucket upper bounds: the p50/p90 land in the ~1 µs bucket
        // ([512, 1024) ns → upper 1024), p95 in the ~1 ms bucket, p100 in
        // the ~1 s bucket.
        assert_eq!(s.p50_latency(), Duration::from_nanos(1024));
        assert_eq!(s.latency_percentile(0.90), Duration::from_nanos(1024));
        assert_eq!(s.p95_latency(), Duration::from_nanos(1 << 20));
        assert_eq!(s.p99_latency(), Duration::from_nanos(1 << 20));
        // The top quantile's bucket bound (2^30 ns) exceeds the recorded
        // max, so it clamps to the max — no percentile ever reads above it.
        assert_eq!(s.latency_percentile(1.0), Duration::from_nanos(1_000_000_000));
        assert!(s.p50_latency() <= s.p95_latency());
        assert!(s.p95_latency() <= s.p99_latency());
        assert!(s.p99_latency() <= s.p999_latency());
    }

    #[test]
    fn p999_resolves_a_one_in_a_thousand_tail() {
        let inner = StatsInner::default();
        // 900 fast requests and exactly one slow one (rank ceil(0.999·901)
        // = 901): p99 stays in the fast bucket, p99.9 must reach the slow
        // one.
        for _ in 0..900 {
            inner.record_request(1_000);
        }
        inner.record_request(1_000_000);
        let s = inner.snapshot();
        assert_eq!(s.p99_latency(), Duration::from_nanos(1024));
        // Bucket upper 2^20 ns clamps to the observed max (1 ms).
        assert_eq!(s.p999_latency(), Duration::from_nanos(1_000_000));
    }

    #[test]
    fn top_bucket_quantiles_report_max_not_a_fabricated_bound() {
        let inner = StatsInner::default();
        // A ~17.5 min latency lands in the unbounded top bucket, well past
        // its lower bound of 2^38 ns. The old rendering clamped the
        // quantile to bucket "upper" 2^39 ≈ 9.2 min; the true bound is the
        // observed max.
        let slow_ns = 1_050_000_000_000u64; // > 2^39
        assert_eq!(latency_bucket(slow_ns), LATENCY_BUCKETS - 1);
        for _ in 0..9 {
            inner.record_request(1_000);
        }
        inner.record_request(slow_ns);
        let s = inner.snapshot();
        assert_eq!(s.latency_percentile(1.0), Duration::from_nanos(slow_ns));
        assert_eq!(s.p999_latency(), Duration::from_nanos(slow_ns));
        assert!(s.latency_percentile(1.0) > Duration::from_nanos(1u64 << 39));
    }

    #[test]
    fn ewma_seeds_then_smooths() {
        let mut e = Ewma::new(20);
        assert_eq!(e.value(), None);
        assert_eq!(e.update(100.0), 100.0, "first observation seeds exactly");
        // 0.2·200 + 0.8·100 = 120.
        assert!((e.update(200.0) - 120.0).abs() < 1e-9);
        let latest_only = Ewma::new(100).value;
        assert_eq!(latest_only, None);
        let mut latest = Ewma::new(100);
        latest.update(5.0);
        assert_eq!(latest.update(9.0), 9.0, "alpha=100% degenerates to the latest sample");
        // Out-of-range alphas clamp instead of dividing by zero / freezing.
        let mut z = Ewma::new(0);
        z.update(3.0);
        assert!((z.update(7.0) - (3.0 + 0.01 * 4.0)).abs() < 1e-12);
    }

    #[test]
    fn service_ewma_tracks_batches_and_resets() {
        let inner = StatsInner::default();
        assert_eq!(inner.ewma_service_ns(), 0, "no batch yet");
        inner.record_batch(2, false, 2_000); // 1000 ns/sample seeds
        assert_eq!(inner.ewma_service_ns(), 1_000);
        inner.record_batch(1, false, 2_000); // 0.2·2000 + 0.8·1000 = 1200
        assert_eq!(inner.ewma_service_ns(), 1_200);
        assert_eq!(inner.snapshot().ewma_service_ns, 1_200);
        inner.reset_ewma();
        assert_eq!(inner.ewma_service_ns(), 0);
        // A genuine zero-duration batch (virtual-clock runs) still counts
        // as "seen": the gauge distinguishes it from "no data".
        inner.record_batch(4, true, 0);
        assert_eq!(inner.ewma_service_ns(), 0);
        assert_ne!(inner.ewma_service_bits.load(Ordering::Relaxed), 0);
        inner.record_batch(1, false, 1_000_000);
        // Seeded at 0.0, so the million-ns batch pulls the EWMA up by α.
        assert_eq!(inner.ewma_service_ns(), 200_000);
    }

    #[test]
    fn merge_adds_counters_and_maxes_latency() {
        let a = StatsInner::default();
        a.record_request(1_000);
        a.record_batch(1, true, 100);
        a.set_queue_depth(2);
        let b = StatsInner::default();
        b.record_request(5_000);
        b.record_request(3_000);
        b.record_batch(2, false, 300);
        b.record_shed();
        b.set_queue_depth(1);
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.requests, 3);
        assert_eq!(m.batches, 2);
        assert_eq!(m.samples, 3);
        assert_eq!(m.shed, 1);
        assert_eq!(m.queue_depth, 3);
        assert_eq!(m.max_latency, Duration::from_nanos(5_000));
        assert_eq!(m.latency_sum, Duration::from_nanos(9_000));
        assert_eq!(m.latency_hist.iter().sum::<u64>(), 3);
    }
}
