//! Lock-free throughput/latency counters for the batching server.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Internal atomic counters, updated by the batcher threads.
#[derive(Default)]
pub(crate) struct StatsInner {
    requests: AtomicU64,
    batches: AtomicU64,
    samples: AtomicU64,
    full_batches: AtomicU64,
    latency_ns_sum: AtomicU64,
    latency_ns_max: AtomicU64,
    infer_ns_sum: AtomicU64,
}

impl StatsInner {
    pub(crate) fn record_request(&self, latency_ns: u64) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.latency_ns_sum.fetch_add(latency_ns, Ordering::Relaxed);
        self.latency_ns_max.fetch_max(latency_ns, Ordering::Relaxed);
    }

    pub(crate) fn record_batch(&self, size: u64, full: bool, infer_ns: u64) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.samples.fetch_add(size, Ordering::Relaxed);
        if full {
            self.full_batches.fetch_add(1, Ordering::Relaxed);
        }
        self.infer_ns_sum.fetch_add(infer_ns, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> ServeStats {
        // Counters are read individually (no global lock), so a snapshot
        // taken mid-batch can tear — e.g. observe a batch's `full_batches`
        // increment but not its `batches` increment. Reading
        // `full_batches` before `batches` (the reverse of record_batch's
        // increment order) makes that unlikely, but Relaxed ordering
        // guarantees nothing across variables: `timeout_batches`
        // saturates, which is the actual guard.
        let full_batches = self.full_batches.load(Ordering::Relaxed);
        let batches = self.batches.load(Ordering::Relaxed);
        ServeStats {
            requests: self.requests.load(Ordering::Relaxed),
            batches,
            samples: self.samples.load(Ordering::Relaxed),
            full_batches,
            latency_sum: Duration::from_nanos(self.latency_ns_sum.load(Ordering::Relaxed)),
            max_latency: Duration::from_nanos(self.latency_ns_max.load(Ordering::Relaxed)),
            infer_time: Duration::from_nanos(self.infer_ns_sum.load(Ordering::Relaxed)),
        }
    }
}

/// A point-in-time snapshot of a server's counters.
///
/// Counters are cumulative since [`crate::Server::start`]. The snapshot is
/// taken counter-by-counter without a global lock, so totals may be a few
/// in-flight requests apart from each other under load.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeStats {
    /// Requests whose logits have been delivered.
    pub requests: u64,
    /// Forward passes executed.
    pub batches: u64,
    /// Samples carried across all forward passes (= delivered requests).
    pub samples: u64,
    /// Batches flushed because they reached `max_batch` (the rest flushed
    /// on the `max_wait` timeout or shutdown drain).
    pub full_batches: u64,
    /// Summed submit→delivery latency across requests.
    pub latency_sum: Duration,
    /// Worst single-request submit→delivery latency.
    pub max_latency: Duration,
    /// Time spent inside `CompiledNet::infer_into`.
    pub infer_time: Duration,
}

impl ServeStats {
    /// Mean realized batch size.
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.samples as f64 / self.batches as f64
        }
    }

    /// Mean submit→delivery latency.
    pub fn mean_latency(&self) -> Duration {
        if self.requests == 0 {
            Duration::ZERO
        } else {
            // Divide in u128 nanoseconds: a u32 cast of `requests` would
            // truncate (and could divide by zero) past 2³² requests.
            Duration::from_nanos((self.latency_sum.as_nanos() / self.requests as u128) as u64)
        }
    }

    /// Batches flushed by the `max_wait` timer (or the shutdown drain)
    /// rather than by filling up.
    pub fn timeout_batches(&self) -> u64 {
        self.batches.saturating_sub(self.full_batches)
    }

    /// Delivered samples per second of inference time (the compute-bound
    /// throughput ceiling; end-to-end throughput also includes queueing).
    pub fn infer_throughput(&self) -> f64 {
        let secs = self.infer_time.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.samples as f64 / secs
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_recorded_events() {
        let inner = StatsInner::default();
        inner.record_request(1_000);
        inner.record_request(3_000);
        inner.record_batch(2, true, 500);
        inner.record_batch(1, false, 250);
        inner.record_request(2_000);
        let s = inner.snapshot();
        assert_eq!(s.requests, 3);
        assert_eq!(s.batches, 2);
        assert_eq!(s.samples, 3);
        assert_eq!(s.full_batches, 1);
        assert_eq!(s.timeout_batches(), 1);
        assert_eq!(s.max_latency, Duration::from_nanos(3_000));
        assert_eq!(s.mean_latency(), Duration::from_nanos(2_000));
        assert!((s.mean_batch_size() - 1.5).abs() < 1e-12);
        assert!(s.infer_throughput() > 0.0);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = StatsInner::default().snapshot();
        assert_eq!(s.mean_batch_size(), 0.0);
        assert_eq!(s.mean_latency(), Duration::ZERO);
        assert_eq!(s.infer_throughput(), 0.0);
    }
}
