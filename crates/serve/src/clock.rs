//! Time source abstraction for the serving and control tiers.
//!
//! Every timestamp the serving stack takes — request enqueue times,
//! latency measurements, supervisor tick times — flows through a
//! [`Clock`] so the *entire* control loop can run under simulated time in
//! tests: a [`VirtualClock`] is advanced explicitly by the test driver,
//! making scale-up/scale-down/hysteresis sequences deterministic and
//! millisecond-fast, with no `thread::sleep`-based assertions anywhere.
//!
//! Production uses [`MonotonicClock`] (an [`Instant`] anchor); nothing in
//! the hot path changes — `now_ns` is one `Instant::elapsed` call.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A monotonic nanosecond time source.
///
/// Implementations must be monotone non-decreasing: `now_ns` never goes
/// backwards. The zero point is arbitrary (construction time for the
/// provided implementations); only differences are meaningful.
pub trait Clock: Send + Sync + std::fmt::Debug {
    /// Nanoseconds since the clock's (arbitrary) zero point.
    fn now_ns(&self) -> u64;
}

/// The production [`Clock`]: wall-clock monotonic time anchored at
/// construction.
#[derive(Debug)]
pub struct MonotonicClock {
    anchor: Instant,
}

impl MonotonicClock {
    /// A clock whose zero point is now.
    pub fn new() -> Self {
        Self { anchor: Instant::now() }
    }

    /// A shared handle to a fresh monotonic clock.
    pub fn shared() -> Arc<dyn Clock> {
        Arc::new(Self::new())
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for MonotonicClock {
    fn now_ns(&self) -> u64 {
        self.anchor.elapsed().as_nanos() as u64
    }
}

/// The deterministic test double: time advances only when the test says
/// so, via [`VirtualClock::advance`].
///
/// Note that a virtual clock controls *timestamps and control-loop
/// decisions*, not thread scheduling — batcher threads still run for
/// real. Deterministic suites therefore pair a `VirtualClock` with
/// `max_wait: Duration::ZERO` (no coalescing window to wait out) and
/// paused replicas where queue depths must be exact.
#[derive(Debug, Default)]
pub struct VirtualClock {
    ns: AtomicU64,
}

impl VirtualClock {
    /// A virtual clock at t = 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// A shared handle to a fresh virtual clock (keep a clone to advance
    /// it while replicas/supervisors hold the `Arc<dyn Clock>` view).
    pub fn shared() -> Arc<VirtualClock> {
        Arc::new(Self::new())
    }

    /// Advances time by `dt`. Saturates at `u64::MAX` ns (~584 years).
    pub fn advance(&self, dt: Duration) {
        let dt = u64::try_from(dt.as_nanos()).unwrap_or(u64::MAX);
        // Saturating add under contention: fetch_update never goes back.
        let _ = self
            .ns
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |t| Some(t.saturating_add(dt)));
    }

    /// Sets the absolute time, which must not move backwards.
    ///
    /// # Panics
    ///
    /// Panics if `ns` is earlier than the current time — a monotonic
    /// clock that rewinds would silently corrupt latency accounting.
    pub fn set_ns(&self, ns: u64) {
        let prev = self.ns.swap(ns, Ordering::AcqRel);
        assert!(prev <= ns, "virtual clock must not rewind ({prev} -> {ns})");
    }
}

impl Clock for VirtualClock {
    fn now_ns(&self) -> u64 {
        self.ns.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_clock_advances() {
        let c = MonotonicClock::new();
        let a = c.now_ns();
        let b = c.now_ns();
        assert!(b >= a);
    }

    #[test]
    fn virtual_clock_only_moves_when_told() {
        let c = VirtualClock::new();
        assert_eq!(c.now_ns(), 0);
        c.advance(Duration::from_millis(5));
        assert_eq!(c.now_ns(), 5_000_000);
        assert_eq!(c.now_ns(), 5_000_000, "no implicit advance");
        c.set_ns(7_000_000);
        assert_eq!(c.now_ns(), 7_000_000);
        c.advance(Duration::from_nanos(u64::MAX));
        assert_eq!(c.now_ns(), u64::MAX, "saturates instead of wrapping");
    }

    #[test]
    #[should_panic(expected = "must not rewind")]
    fn virtual_clock_rejects_rewind() {
        let c = VirtualClock::new();
        c.advance(Duration::from_secs(1));
        c.set_ns(10);
    }

    #[test]
    fn trait_object_usable_through_arc() {
        let v = VirtualClock::shared();
        let dyn_clock: Arc<dyn Clock> = Arc::clone(&v) as Arc<dyn Clock>;
        v.advance(Duration::from_micros(3));
        assert_eq!(dyn_clock.now_ns(), 3_000);
    }
}
