//! Error type for the serving crate.

use std::error::Error;
use std::fmt;

/// Errors produced by `scissor-serve`.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ServeError {
    /// The submitted sample does not match the plan's input shape.
    ShapeMismatch {
        /// Input shape `(c, h, w)` the compiled plan expects.
        expected: (usize, usize, usize),
        /// Shape `(b, c, h, w)` of the offending submission.
        got: (usize, usize, usize, usize),
    },
    /// A raw feature slice had the wrong length for the plan's input.
    FeatureLengthMismatch {
        /// Feature count `c·h·w` the compiled plan expects.
        expected: usize,
        /// Length of the submitted slice.
        got: usize,
    },
    /// The bounded queue is at capacity; the submission was shed.
    Overloaded {
        /// Pending requests in the queue at rejection time.
        depth: usize,
        /// The queue capacity (`ServeConfig::queue_cap`).
        cap: usize,
    },
    /// The server is shutting down and no longer accepts submissions.
    ShuttingDown,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::ShapeMismatch { expected, got } => write!(
                f,
                "sample shape {:?} does not match the plan's batch-1 {:?} input",
                got, expected
            ),
            ServeError::FeatureLengthMismatch { expected, got } => {
                write!(f, "feature slice has {got} values, the plan expects {expected}")
            }
            ServeError::Overloaded { depth, cap } => {
                write!(f, "queue at capacity ({depth}/{cap} pending); request shed")
            }
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
        }
    }
}

impl Error for ServeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_carry_shapes() {
        let e = ServeError::ShapeMismatch { expected: (1, 28, 28), got: (2, 1, 28, 28) };
        assert!(e.to_string().contains("28"));
        let e = ServeError::FeatureLengthMismatch { expected: 784, got: 3 };
        assert!(e.to_string().contains("784"));
        let e = ServeError::Overloaded { depth: 128, cap: 128 };
        assert!(e.to_string().contains("128"));
        assert!(ServeError::ShuttingDown.to_string().contains("shutting down"));
    }
}
