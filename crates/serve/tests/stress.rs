//! Concurrency stress tests: N threads × M requests through the
//! micro-batcher must return exactly — bit for bit — the logits a direct
//! `CompiledNet` batch pass produces, under every flush regime (full
//! batches, max-wait timeouts, shutdown drains).

use std::sync::Arc;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::SeedableRng;

use scissor_nn::{CompiledNet, NetworkBuilder, Tensor4};
use scissor_serve::{Replica, ServeConfig, ServeError, Server};

fn plan() -> CompiledNet {
    let mut rng = StdRng::seed_from_u64(23);
    NetworkBuilder::new((2, 6, 6))
        .conv("conv1", 4, 3, 1, 1, &mut rng)
        .relu()
        .maxpool(2, 2)
        .linear("fc1", 8, &mut rng)
        .relu()
        .linear("fc2", 5, &mut rng)
        .build()
        .compile()
        .expect("compile")
}

/// Deterministic per-request sample, distinct across (thread, request).
fn sample(thread: usize, request: usize) -> Tensor4 {
    let seed = thread * 1009 + request * 31;
    Tensor4::from_vec(
        1,
        2,
        6,
        6,
        (0..72).map(|i| ((i * 7 + seed) % 53) as f32 * 0.07 - 1.7).collect(),
    )
}

/// Runs `threads × requests` submissions and checks every response against
/// the direct batch pass over the identical samples.
fn stress(cfg: ServeConfig, threads: usize, requests: usize) {
    let reference_plan = plan();
    let server = Arc::new(Server::start(plan(), cfg));
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let server = Arc::clone(&server);
            std::thread::spawn(move || {
                (0..requests)
                    .map(|r| server.submit(&sample(t, r)).expect("submit"))
                    .collect::<Vec<_>>()
            })
        })
        .collect();
    let responses: Vec<Vec<Vec<f32>>> =
        handles.into_iter().map(|h| h.join().expect("caller thread")).collect();

    // Direct batch pass over all samples at once — the ground truth.
    let mut flat = Vec::new();
    for t in 0..threads {
        for r in 0..requests {
            flat.extend_from_slice(sample(t, r).as_slice());
        }
    }
    let all = Tensor4::from_vec(threads * requests, 2, 6, 6, flat);
    let expect = reference_plan.infer(&all);

    for (t, per_thread) in responses.iter().enumerate() {
        for (r, got) in per_thread.iter().enumerate() {
            let want = expect.sample(t * requests + r);
            assert_eq!(got.len(), want.len());
            let bits_match = got.iter().zip(want).all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(bits_match, "thread {t} request {r}: logits must be bitwise identical");
        }
    }

    let stats = server.stats();
    assert_eq!(stats.requests as usize, threads * requests);
    assert_eq!(stats.samples, stats.requests);
    assert_eq!(stats.full_batches + stats.timeout_batches(), stats.batches);
}

#[test]
fn concurrent_submissions_match_direct_batch_bitwise() {
    stress(
        ServeConfig {
            max_batch: 8,
            max_wait: Duration::from_millis(2),
            workers: 1,
            ..ServeConfig::default()
        },
        8,
        25,
    );
}

#[test]
fn zero_max_wait_still_delivers_exact_logits() {
    // Every batch flushes with whatever is queued the moment a batcher
    // looks — heavy timeout/partial-batch traffic.
    stress(
        ServeConfig {
            max_batch: 16,
            max_wait: Duration::ZERO,
            workers: 1,
            ..ServeConfig::default()
        },
        4,
        20,
    );
}

#[test]
fn multiple_batcher_workers_preserve_bit_equality() {
    stress(
        ServeConfig {
            max_batch: 4,
            max_wait: Duration::from_micros(200),
            workers: 3,
            ..ServeConfig::default()
        },
        6,
        15,
    );
}

#[test]
fn batch_one_server_degenerates_to_single_sample_passes() {
    stress(
        ServeConfig {
            max_batch: 1,
            max_wait: Duration::ZERO,
            workers: 2,
            ..ServeConfig::default()
        },
        3,
        10,
    );
}

#[test]
fn underfull_batch_flushes_on_max_wait_and_all_callers_complete() {
    // max_batch far above the request count: the only way out is the
    // max-wait timer. Every caller must still get exact logits, and every
    // batch must be accounted a timeout flush.
    let reference_plan = plan();
    let server = Arc::new(Server::start(
        plan(),
        ServeConfig {
            max_batch: 64,
            max_wait: Duration::from_millis(5),
            workers: 1,
            ..ServeConfig::default()
        },
    ));
    let handles: Vec<_> = (0..6)
        .map(|t| {
            let server = Arc::clone(&server);
            std::thread::spawn(move || server.submit(&sample(t, 0)).expect("submit"))
        })
        .collect();
    for (t, h) in handles.into_iter().enumerate() {
        let got = h.join().expect("caller");
        let want = reference_plan.infer(&sample(t, 0));
        assert_eq!(got.as_slice(), want.as_slice(), "caller {t}");
    }
    let stats = server.stats();
    assert_eq!(stats.requests, 6);
    assert_eq!(stats.full_batches, 0, "nothing can fill a 64-slot batch here");
    assert!(stats.timeout_batches() >= 1);
    assert!(stats.max_latency >= Duration::from_millis(5) || stats.batches > 1);
}

#[test]
fn concurrent_open_loop_overload_sheds_and_delivers_the_rest() {
    // 6 threads fire-and-forget 40 async submissions each at a replica
    // whose queue holds 16: some must shed with `Overloaded`, and every
    // ADMITTED ticket must still deliver logits bitwise identical to a
    // direct compiled pass. Pausing the replica for the submission phase
    // makes the shed count deterministic (exactly total - cap admitted).
    let reference_plan = plan();
    let cap = 16;
    let replica = Arc::new(Replica::start(
        Arc::new(plan()),
        ServeConfig {
            max_batch: 8,
            max_wait: Duration::ZERO,
            queue_cap: cap,
            ..ServeConfig::default()
        },
    ));
    replica.pause();
    let handles: Vec<_> = (0..6)
        .map(|t| {
            let replica = Arc::clone(&replica);
            std::thread::spawn(move || {
                (0..40).map(|r| (t, r, replica.submit(&sample(t, r)))).collect::<Vec<_>>()
            })
        })
        .collect();
    let outcomes: Vec<_> =
        handles.into_iter().flat_map(|h| h.join().expect("caller thread")).collect();

    let admitted = outcomes.iter().filter(|(_, _, o)| o.is_ok()).count();
    let shed =
        outcomes.iter().filter(|(_, _, o)| matches!(o, Err(ServeError::Overloaded { .. }))).count();
    assert_eq!(admitted, cap, "paused replica admits exactly queue_cap requests");
    assert_eq!(shed, 6 * 40 - cap, "everything else sheds");
    assert_eq!(replica.stats().shed as usize, shed);
    assert_eq!(replica.queue_depth(), cap);

    replica.resume();
    for (t, r, outcome) in outcomes {
        if let Ok(ticket) = outcome {
            let want = reference_plan.infer(&sample(t, r));
            let got = ticket.wait();
            let bits = got.iter().zip(want.as_slice()).all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(bits, "thread {t} request {r}: admitted logits must be exact");
        }
    }
    assert_eq!(replica.stats().requests as usize, cap);
}

#[test]
fn latency_percentiles_are_ordered_and_populated_under_load() {
    let server = Arc::new(Server::start(
        plan(),
        ServeConfig {
            max_batch: 8,
            max_wait: Duration::from_micros(300),
            ..ServeConfig::default()
        },
    ));
    let handles: Vec<_> = (0..4)
        .map(|t| {
            let server = Arc::clone(&server);
            std::thread::spawn(move || {
                for r in 0..25 {
                    server.submit(&sample(t, r)).expect("submit");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("caller");
    }
    let stats = server.stats();
    assert_eq!(stats.requests, 100);
    assert_eq!(stats.latency_hist.iter().sum::<u64>(), 100);
    let (p50, p95, p99) = (stats.p50_latency(), stats.p95_latency(), stats.p99_latency());
    assert!(p50 > Duration::ZERO);
    assert!(p50 <= p95 && p95 <= p99);
    // Reported percentiles are bucket upper bounds clamped to the
    // observed max, so no quantile may ever read above it.
    assert!(p99 <= stats.max_latency);
    assert!(stats.mean_latency() <= stats.max_latency);
}
