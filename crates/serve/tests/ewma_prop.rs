//! Property tests for the service-time EWMA that latency-aware routing
//! steers on: the estimate stays inside the envelope of observed samples
//! and converges monotonically on constant input — for every admissible
//! smoothing factor.

use proptest::prelude::*;

use scissor_serve::Ewma;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The estimate is always within `[min, max]` of the samples seen so
    /// far: a convex combination can never overshoot its inputs.
    #[test]
    fn estimate_stays_inside_the_sample_envelope(
        alpha_pct in 0u8..=120, // constructor clamps to [1, 100]
        samples in proptest::collection::vec(0.0f64..1e12, 1..60),
    ) {
        let mut ewma = Ewma::new(alpha_pct);
        prop_assert_eq!(ewma.value(), None, "no estimate before the first sample");
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &s in &samples {
            lo = lo.min(s);
            hi = hi.max(s);
            ewma.update(s);
            let v = ewma.value().expect("seeded after first sample");
            prop_assert!(v >= lo && v <= hi, "estimate {v} escaped envelope [{lo}, {hi}]");
        }
    }

    /// On constant input the distance to that constant is monotonically
    /// non-increasing (strictly decreasing while non-zero for alpha <
    /// 100), from any starting estimate.
    #[test]
    fn converges_monotonically_on_constant_input(
        alpha_pct in 1u8..=100,
        seed in 0.0f64..1e9,
        constant in 0.0f64..1e9,
        steps in 1usize..200,
    ) {
        let mut ewma = Ewma::new(alpha_pct);
        ewma.update(seed);
        let mut dist = (ewma.value().unwrap() - constant).abs();
        for _ in 0..steps {
            ewma.update(constant);
            let next = (ewma.value().unwrap() - constant).abs();
            // One ulp-scale slack: once converged, the convex update may
            // round the last bit either way.
            let eps = constant.abs() * 1e-12 + 1e-12;
            prop_assert!(next <= dist + eps, "distance grew: {next} > {dist}");
            if alpha_pct == 100 {
                prop_assert_eq!(next, 0.0, "alpha 100% must jump straight to the input");
            }
            dist = next;
        }
        // Geometric decay: after enough steps the estimate is close on
        // the scale of the starting gap.
        if steps >= 100 {
            prop_assert!(dist <= (seed - constant).abs() * 0.5 + 1e-9);
        }
    }

    /// The first sample seeds the estimate exactly — no bias toward an
    /// implicit zero start.
    #[test]
    fn first_sample_seeds_exactly(alpha_pct in 0u8..=120, first in 0.0f64..1e12) {
        let mut ewma = Ewma::new(alpha_pct);
        ewma.update(first);
        prop_assert_eq!(ewma.value(), Some(first));
    }
}
