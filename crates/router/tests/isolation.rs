//! Shedding-storm regression: an overload storm hammering one model must
//! not starve, shed, or destabilize a second healthy model on the same
//! router — per-model admission gates and per-model control state are
//! the isolation boundary.

use std::sync::Arc;
use std::time::Duration;

use scissor_nn::{CompiledNet, NetworkBuilder, Tensor4};
use scissor_router::control::{ControlConfig, ScalingAction, Supervisor};
use scissor_router::{ModelConfig, Router, RouterError, ServeConfig};

use rand::rngs::StdRng;
use rand::SeedableRng;

fn plan(seed: u64) -> CompiledNet {
    let mut rng = StdRng::seed_from_u64(seed);
    NetworkBuilder::new((1, 5, 5))
        .conv("conv1", 2, 3, 1, 0, &mut rng)
        .relu()
        .linear("fc", 4, &mut rng)
        .build()
        .compile()
        .expect("compile")
}

fn sample(seed: usize) -> Tensor4 {
    Tensor4::from_vec(
        1,
        1,
        5,
        5,
        (0..25).map(|i| ((i * 13 + seed * 7) % 31) as f32 * 0.06 - 0.9).collect(),
    )
}

/// An overload storm against a capacity-starved model sheds there and
/// only there: the healthy neighbor admits and serves every one of its
/// own submissions bit-equal, with zero sheds.
#[test]
fn storm_on_one_model_does_not_shed_or_starve_the_other() {
    let healthy_plan = Arc::new(plan(1));
    let router = Arc::new(Router::new());
    // "noisy": one paused replica behind a 4-deep gate — every storm
    // submission beyond 4 bounces.
    router
        .register(
            "noisy",
            plan(2),
            ModelConfig {
                replicas: 1,
                queue_high_water: 4,
                replica: ServeConfig {
                    max_batch: 4,
                    max_wait: Duration::ZERO,
                    queue_cap: 4,
                    ..ServeConfig::default()
                },
                ..ModelConfig::default()
            },
        )
        .unwrap();
    router.pause("noisy").unwrap();
    router
        .register_shared(
            "healthy",
            Arc::clone(&healthy_plan),
            ModelConfig {
                replicas: 2,
                queue_high_water: 4096,
                replica: ServeConfig {
                    max_batch: 8,
                    max_wait: Duration::from_micros(100),
                    ..ServeConfig::default()
                },
                ..ModelConfig::default()
            },
        )
        .unwrap();

    // The storm: 4 threads bounce 200 submissions each off noisy's gate.
    let stormers: Vec<_> = (0..4)
        .map(|t| {
            let router = Arc::clone(&router);
            std::thread::spawn(move || {
                let mut shed = 0u32;
                for s in 0..200 {
                    if let Err(RouterError::Overloaded { .. }) =
                        router.submit("noisy", &sample(t * 1000 + s))
                    {
                        shed += 1;
                    }
                }
                shed
            })
        })
        .collect();

    // Meanwhile the healthy model's traffic must flow untouched.
    for s in 0..100 {
        let got = router.submit("healthy", &sample(s)).expect("healthy must admit").wait();
        assert_eq!(
            got.as_slice(),
            healthy_plan.infer(&sample(s)).as_slice(),
            "healthy sample {s} must be bit-equal mid-storm"
        );
    }

    let shed_by_storm: u32 = stormers.into_iter().map(|h| h.join().unwrap()).sum();
    assert!(shed_by_storm > 700, "the storm must actually have bounced: {shed_by_storm}");

    let healthy = router.model_stats("healthy").unwrap();
    assert_eq!(healthy.total_shed(), 0, "healthy model shed under a neighbor's storm");
    assert_eq!(healthy.serve.requests, 100, "every healthy request delivered");
    let noisy = router.model_stats("noisy").unwrap();
    assert_eq!(u32::try_from(noisy.total_shed()).unwrap(), shed_by_storm);
    assert!(noisy.serve.queue_depth <= 4, "noisy backlog stayed bounded");

    router.resume("noisy").unwrap();
    router.shutdown();
}

/// Control-plane isolation: the supervisor reacting to the noisy model's
/// storm (scale-up, admission resize) takes no action against the
/// healthy model — per-model streaks and cooldowns do not bleed across.
#[test]
fn supervisor_actions_stay_on_the_stormed_model() {
    let router = Arc::new(Router::new());
    for (name, hw) in [("noisy", 4usize), ("healthy", 4096)] {
        router
            .register(
                name,
                plan(3),
                ModelConfig {
                    replicas: 1,
                    queue_high_water: hw,
                    replica: ServeConfig {
                        max_batch: 8,
                        max_wait: Duration::ZERO,
                        queue_cap: hw,
                        ..ServeConfig::default()
                    },
                    ..ModelConfig::default()
                },
            )
            .unwrap();
    }
    router.pause("noisy").unwrap();
    let mut sup = Supervisor::new(
        Arc::clone(&router),
        ControlConfig {
            up_streak: 2,
            down_streak: 1_000_000, // never walk anything down in this test
            cooldown_ticks: 0,
            pressure_pct: 80,
            max_replicas: 3,
            min_replicas: 1,
            calibrate_rounds: 0,
            ..ControlConfig::default()
        },
    );

    // Storm noisy past its gate; trickle healthy traffic between ticks.
    for round in 0..6 {
        for s in 0..8 {
            let _ = router.submit("noisy", &sample(round * 10 + s));
        }
        let got = router.submit("healthy", &sample(round)).expect("healthy admits").wait();
        assert_eq!(got.len(), 4);
        sup.tick();
    }

    let actions = sup.actions();
    assert!(!actions.is_empty(), "the storm must provoke the supervisor");
    assert!(
        actions.iter().all(|d| d.model == "noisy"),
        "supervisor acted on the healthy model: {actions:?}"
    );
    assert!(
        actions.iter().any(|d| d.action == ScalingAction::ScaleUp),
        "sustained storm should add noisy capacity: {actions:?}"
    );
    assert_eq!(router.model_stats("healthy").unwrap().total_shed(), 0);
    assert_eq!(router.replica_count("healthy"), Some(1), "healthy capacity untouched");

    router.resume("noisy").unwrap();
    router.shutdown();
}
