//! Fault injection for the scale-down teardown path: tearing a replica
//! out from under live traffic (or a paused backlog) must lose no
//! admitted ticket, and every ticket must still resolve **bit-equal** to
//! a direct `CompiledNet::infer` over the same sample.
//!
//! Also holds the missed-wakeup regression for `Ticket::wait`: the
//! rendezvous is fill-under-lock + notify-before-unlock on the slot
//! mutex, so a waiter is either already parked in `Condvar::wait` (and
//! receives the notify) or has yet to acquire the lock (and observes
//! `Ready` before parking). The stress tests here race hundreds of
//! waiters against fulfilment — including fulfilment via the
//! reroute-after-teardown path — to pin that invariant down.

use std::sync::Arc;
use std::time::Duration;

use scissor_nn::{CompiledNet, NetworkBuilder, Tensor4};
use scissor_router::{ModelConfig, Router, RouterError, ServeConfig, Ticket};

use rand::rngs::StdRng;
use rand::SeedableRng;

fn plan() -> CompiledNet {
    let mut rng = StdRng::seed_from_u64(99);
    NetworkBuilder::new((1, 6, 6))
        .conv("conv1", 3, 3, 1, 0, &mut rng)
        .relu()
        .linear("fc", 5, &mut rng)
        .build()
        .compile()
        .expect("compile")
}

fn sample(seed: usize) -> Tensor4 {
    Tensor4::from_vec(
        1,
        1,
        6,
        6,
        (0..36).map(|i| ((i * 11 + seed * 17) % 29) as f32 * 0.07 - 1.0).collect(),
    )
}

fn busy_config(replicas: usize) -> ModelConfig {
    ModelConfig {
        replicas,
        queue_high_water: 100_000,
        replica: ServeConfig {
            max_batch: 8,
            max_wait: Duration::from_micros(100),
            ..ServeConfig::default()
        },
        ..ModelConfig::default()
    }
}

/// Teardown under live fire: replicas are repeatedly removed and added
/// while submissions stream in. Every admitted ticket resolves, bit-equal
/// to the reference forward, and nothing is shed.
#[test]
fn scale_down_mid_traffic_loses_no_ticket() {
    let reference = Arc::new(plan());
    let router = Arc::new(Router::new());
    router.register_shared("m", Arc::clone(&reference), busy_config(3)).unwrap();

    let mut tickets: Vec<(usize, Ticket)> = Vec::new();
    for s in 0..300 {
        tickets.push((s, router.submit("m", &sample(s)).expect("admitted")));
        // Churn the replica set in the middle of the stream: two
        // teardowns and two scale-ups, at staggered points.
        match s {
            75 | 150 => {
                router.scale_down("m").unwrap();
            }
            110 | 220 => {
                router.scale_up("m").unwrap();
            }
            _ => {}
        }
    }
    assert_eq!(router.replica_count("m"), Some(3));

    for (s, t) in tickets {
        assert_eq!(
            t.wait().as_slice(),
            reference.infer(&sample(s)).as_slice(),
            "sample {s} must be bit-equal through teardown churn"
        );
    }
    let stats = router.model_stats("m").unwrap();
    assert_eq!(stats.total_shed(), 0, "admitted-once means never shed");
    assert_eq!(stats.serve.requests, 300, "every request delivered exactly once");
    router.shutdown();
}

/// Teardown during a pause: the victim's parked backlog is rerouted into
/// the surviving (still paused) replicas with nothing lost, queue caps
/// notwithstanding, and resumes deliver bit-equal results.
#[test]
fn scale_down_during_pause_reroutes_every_parked_ticket() {
    let reference = Arc::new(plan());
    let router = Arc::new(Router::new());
    // Tight per-replica caps: after two teardowns the single survivor
    // holds 30 pending against a cap of 10 — proof the reroute path
    // bypasses caps for already-admitted work.
    let cfg = ModelConfig {
        replicas: 3,
        queue_high_water: 30,
        replica: ServeConfig {
            max_batch: 4,
            max_wait: Duration::ZERO,
            queue_cap: 10,
            ..ServeConfig::default()
        },
        ..ModelConfig::default()
    };
    router.register_shared("m", Arc::clone(&reference), cfg).unwrap();
    router.pause("m").unwrap();

    let tickets: Vec<(usize, Ticket)> =
        (0..30).map(|s| (s, router.submit("m", &sample(s)).expect("admitted"))).collect();
    assert_eq!(router.queue_depth("m"), Some(30));

    router.scale_down("m").unwrap();
    assert_eq!(router.queue_depth("m"), Some(30), "teardown #1 lost nothing");
    router.scale_down("m").unwrap();
    assert_eq!(router.replica_count("m"), Some(1));
    assert_eq!(router.queue_depth("m"), Some(30), "teardown #2 lost nothing");
    assert_eq!(router.replica_queue_depths("m"), Some(vec![30]), "all parked on the survivor");

    router.resume("m").unwrap();
    for (s, t) in tickets {
        assert_eq!(
            t.wait().as_slice(),
            reference.infer(&sample(s)).as_slice(),
            "sample {s} must survive two teardowns bit-equal"
        );
    }
    assert_eq!(router.model_stats("m").unwrap().total_shed(), 0);
    router.shutdown();
}

/// Missed-wakeup regression: waiter threads park on tickets *before*
/// fulfilment is possible (model paused), fulfilment then arrives — for
/// half the cycles via the reroute-after-teardown path — and every
/// waiter must return. A missed wakeup hangs the test harness; there are
/// no sleeps and no timing assertions.
#[test]
fn every_parked_waiter_wakes_through_teardown_and_resume() {
    let reference = Arc::new(plan());
    let router = Arc::new(Router::new());
    router.register_shared("m", Arc::clone(&reference), busy_config(2)).unwrap();

    for cycle in 0..4 {
        router.pause("m").unwrap();
        let waiters: Vec<_> = (0..64)
            .map(|s| {
                let t = router.submit("m", &sample(s)).expect("admitted");
                std::thread::spawn(move || (s, t.wait()))
            })
            .collect();
        // Give the waiters a chance to actually park before fulfilment.
        for _ in 0..100 {
            std::thread::yield_now();
        }
        if cycle % 2 == 0 {
            // Odd path: the backlog moves replicas before delivery.
            router.scale_down("m").unwrap();
            router.scale_up("m").unwrap();
        }
        router.resume("m").unwrap();
        for w in waiters {
            let (s, got) = w.join().expect("waiter must wake and finish");
            assert_eq!(got.as_slice(), reference.infer(&sample(s)).as_slice());
        }
    }
    router.shutdown();
}

/// The teardown guard rails: no scaling below one replica, no scaling on
/// unknown models, none of it after shutdown.
#[test]
fn scaling_error_paths() {
    let router = Arc::new(Router::new());
    router.register("m", plan(), busy_config(1)).unwrap();
    assert!(matches!(router.scale_down("m"), Err(RouterError::InvalidConfig { .. })));
    assert!(matches!(router.scale_up("ghost"), Err(RouterError::UnknownModel { .. })));
    assert!(matches!(router.scale_down("ghost"), Err(RouterError::UnknownModel { .. })));
    assert!(matches!(router.set_high_water("ghost", 5), Err(RouterError::UnknownModel { .. })));
    assert!(matches!(router.rebalance("ghost"), Err(RouterError::UnknownModel { .. })));
    router.scale_up("m").unwrap();
    assert_eq!(router.replica_count("m"), Some(2));
    router.shutdown();
    assert!(matches!(router.scale_up("m"), Err(RouterError::ShuttingDown)));
    assert!(matches!(router.scale_down("m"), Err(RouterError::ShuttingDown)));
}
