//! Property tests for the routing and control-plane invariants:
//! replica selection never steers work at a paused replica while an
//! active one exists, selection scores are minimal under both policies,
//! and the admission-bound resize actuator can never clamp below the
//! in-flight depth.

use proptest::prelude::*;

use std::time::Duration;

use scissor_nn::{NetworkBuilder, Tensor4};
use scissor_router::{
    select_replica, ModelConfig, ReplicaSnapshot, RoutePolicy, Router, ServeConfig,
};

use rand::rngs::StdRng;
use rand::SeedableRng;

fn snapshot_strategy() -> impl Strategy<Value = Vec<ReplicaSnapshot>> {
    proptest::collection::vec(
        (0usize..50, 0u64..100_000, 0u64..2).prop_map(|(depth, ewma_service_ns, p)| {
            ReplicaSnapshot { depth, ewma_service_ns, paused: p == 1 }
        }),
        1..8,
    )
}

fn policy_strategy() -> impl Strategy<Value = RoutePolicy> {
    (0u64..2)
        .prop_map(|p| if p == 0 { RoutePolicy::LeastLoaded } else { RoutePolicy::LatencyAware })
}

fn score(policy: RoutePolicy, r: &ReplicaSnapshot) -> u128 {
    match policy {
        RoutePolicy::LeastLoaded => r.depth as u128,
        RoutePolicy::LatencyAware => {
            (r.depth as u128 + 1).saturating_mul(u128::from(r.ewma_service_ns.max(1)))
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The load-bearing safety property: a paused (draining/maintenance)
    /// replica never receives fresh traffic while any active replica
    /// exists — under either policy, from any rotation origin.
    #[test]
    fn selection_never_picks_a_paused_replica_while_an_active_exists(
        snaps in snapshot_strategy(),
        policy in policy_strategy(),
        start in 0usize..64,
    ) {
        let chosen = select_replica(policy, start, &snaps).expect("non-empty");
        prop_assert!(chosen < snaps.len());
        if snaps.iter().any(|r| !r.paused) {
            prop_assert!(
                !snaps[chosen].paused,
                "picked paused replica {chosen} of {snaps:?}"
            );
        }
    }

    /// The chosen replica's score is minimal among the eligible set, and
    /// among minimal-score candidates its depth is minimal — the
    /// policy's stated contract, checked against a brute-force oracle.
    #[test]
    fn selection_score_is_minimal_over_eligible_replicas(
        snaps in snapshot_strategy(),
        policy in policy_strategy(),
        start in 0usize..64,
    ) {
        let chosen = select_replica(policy, start, &snaps).expect("non-empty");
        let any_active = snaps.iter().any(|r| !r.paused);
        let eligible = |r: &ReplicaSnapshot| !any_active || !r.paused;
        let best = snaps.iter().filter(|r| eligible(r)).map(|r| score(policy, r)).min()
            .expect("at least one eligible");
        prop_assert_eq!(score(policy, &snaps[chosen]), best);
        let min_depth_at_best = snaps
            .iter()
            .filter(|r| eligible(r) && score(policy, r) == best)
            .map(|r| r.depth)
            .min()
            .expect("non-empty");
        prop_assert_eq!(snaps[chosen].depth, min_depth_at_best);
    }

    /// Rotation fairness: with identical replicas the rotating origin is
    /// honored exactly, so ties spread instead of piling onto replica 0.
    #[test]
    fn ties_follow_the_rotation_origin(
        n in 1usize..8,
        start in 0usize..64,
        policy in policy_strategy(),
    ) {
        let snaps = vec![ReplicaSnapshot { depth: 3, ewma_service_ns: 500, paused: false }; n];
        prop_assert_eq!(select_replica(policy, start, &snaps), Some(start % n));
    }

    /// Selection is total on non-empty input and `None` on empty input.
    #[test]
    fn selection_is_total(policy in policy_strategy(), start in 0usize..64) {
        prop_assert_eq!(select_replica(policy, start, &[]), None);
    }
}

fn tiny_plan() -> scissor_nn::CompiledNet {
    let mut rng = StdRng::seed_from_u64(5);
    NetworkBuilder::new((1, 4, 4))
        .conv("conv1", 2, 3, 1, 0, &mut rng)
        .relu()
        .linear("fc", 2, &mut rng)
        .build()
        .compile()
        .expect("compile")
}

fn sample(seed: usize) -> Tensor4 {
    Tensor4::from_vec(
        1,
        1,
        4,
        4,
        (0..16).map(|i| ((i * 3 + seed * 7) % 19) as f32 * 0.1 - 0.9).collect(),
    )
}

proptest! {
    // Each case spins up real batcher threads; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// `ResizeHighWater` can never clamp the admission bound below the
    /// requests already in flight (or below 1): shrinking the bound must
    /// not retroactively shed admitted work.
    #[test]
    fn resize_high_water_never_clamps_below_inflight_depth(
        parked in 0usize..10,
        requested in 0usize..64,
    ) {
        let router = Router::new();
        let cfg = ModelConfig {
            replicas: 2,
            queue_high_water: 32,
            replica: ServeConfig {
                max_batch: 4,
                max_wait: Duration::ZERO,
                ..ServeConfig::default()
            },
            ..ModelConfig::default()
        };
        router.register("m", tiny_plan(), cfg).unwrap();
        router.pause("m").unwrap();
        let _tickets: Vec<_> =
            (0..parked).map(|s| router.submit("m", &sample(s)).expect("admitted")).collect();

        let effective = router.set_high_water("m", requested).unwrap();
        prop_assert_eq!(effective, requested.max(parked).max(1));
        prop_assert!(effective >= parked, "bound below in-flight depth");
        prop_assert_eq!(router.model_stats("m").unwrap().queue_high_water, effective);
        router.resume("m").unwrap();
        router.shutdown();
    }
}

/// The all-paused fallback arm on a live router: when every replica is
/// paused, selection falls back to spreading least-loaded across all of
/// them instead of refusing to route (deterministic because nothing
/// drains while paused).
#[test]
fn live_router_spreads_evenly_when_every_replica_is_paused() {
    let router = Router::new();
    let cfg = ModelConfig {
        replicas: 2,
        queue_high_water: 1024,
        replica: ServeConfig { max_batch: 4, max_wait: Duration::ZERO, ..ServeConfig::default() },
        ..ModelConfig::default()
    };
    router.register("m", tiny_plan(), cfg).unwrap();
    router.pause("m").unwrap();
    for s in 0..6 {
        router.submit("m", &sample(s)).unwrap();
    }
    assert_eq!(router.replica_queue_depths("m"), Some(vec![3, 3]), "all-paused fallback spreads");
    router.resume("m").unwrap();
    router.shutdown();
}
