//! Deterministic control-plane simulation: scripted load profiles driven
//! entirely on a [`VirtualClock`], asserting the *exact* sequence of
//! supervisor decisions.
//!
//! Determinism strategy (the convention these suites share): replicas are
//! **paused** while a profile builds queue state — depths are then exact,
//! not a race against the batchers — and `max_wait: Duration::ZERO` means
//! drains flush whatever is queued the moment a batcher looks. All
//! latency/EWMA accounting flows through the virtual clock (frozen unless
//! the script advances it), and the supervisor's policy is a pure
//! function of observations, so every tick's decision is reproducible.
//! No `thread::sleep` anywhere; the only waiting is a yield-spin on a
//! drain that is already in flight.

use std::sync::Arc;
use std::time::Duration;

use scissor_nn::{NetworkBuilder, Tensor4};
use scissor_router::control::{ControlConfig, ScalingAction, Supervisor};
use scissor_router::{Clock, ModelConfig, Router, ServeConfig, VirtualClock};

use rand::rngs::StdRng;
use rand::SeedableRng;

fn tiny_plan(seed: u64) -> scissor_nn::CompiledNet {
    let mut rng = StdRng::seed_from_u64(seed);
    NetworkBuilder::new((1, 4, 4))
        .conv("conv1", 2, 3, 1, 0, &mut rng)
        .relu()
        .linear("fc", 3, &mut rng)
        .build()
        .compile()
        .expect("compile")
}

fn sample(seed: usize) -> Tensor4 {
    Tensor4::from_vec(
        1,
        1,
        4,
        4,
        (0..16).map(|i| ((i * 7 + seed * 13) % 23) as f32 * 0.1 - 1.0).collect(),
    )
}

/// The sim's policy knobs: tight streaks so profiles stay short, one
/// cooldown tick, calibration off (it measures real wall time).
fn sim_config() -> ControlConfig {
    ControlConfig {
        up_streak: 2,
        down_streak: 3,
        cooldown_ticks: 1,
        pressure_pct: 50,
        max_replicas: 2,
        min_replicas: 1,
        drift_pct: 300,
        calibrate_rounds: 0,
        ..ControlConfig::default()
    }
}

fn paused_model(router: &Router, model: &str, replicas: usize, high_water: usize) {
    let cfg = ModelConfig {
        replicas,
        queue_high_water: high_water,
        replica: ServeConfig {
            max_batch: 8,
            max_wait: Duration::ZERO,
            queue_cap: high_water,
            ..ServeConfig::default()
        },
        ..ModelConfig::default()
    };
    router.register(model, tiny_plan(11), cfg).unwrap();
    router.pause(model).unwrap();
}

fn drain(router: &Router, model: &str) {
    router.resume(model).unwrap();
    let mut spins = 0u64;
    while router.queue_depth(model).unwrap() > 0 {
        std::thread::yield_now();
        spins += 1;
        assert!(spins < 100_000_000, "queue must drain");
    }
}

/// Burst profile: a backlog parks above the pressure threshold, the
/// supervisor scales up, hits the replica ceiling, widens admission;
/// after the burst drains it scales back down and restores the original
/// bound. Every tick's action is asserted, in order.
#[test]
fn burst_profile_emits_the_exact_decision_sequence() {
    let clock = VirtualClock::shared();
    let router = Arc::new(Router::with_clock(clock.clone()));
    paused_model(&router, "m", 1, 8);
    let mut sup = Supervisor::new(Arc::clone(&router), sim_config());

    // Park 4 requests: 4/8 = 50% ≥ pressure 50% → overloaded.
    let tickets: Vec<_> = (0..4).map(|s| router.submit("m", &sample(s)).unwrap()).collect();

    let mut actions = Vec::new();
    let tick = |sup: &mut Supervisor, actions: &mut Vec<ScalingAction>| {
        clock.advance(Duration::from_millis(1));
        let decisions = sup.tick();
        assert_eq!(decisions.len(), 1, "one model → one decision per tick");
        actions.push(decisions[0].action.clone());
    };

    for _ in 0..6 {
        tick(&mut sup, &mut actions);
    }
    assert_eq!(
        actions,
        vec![
            ScalingAction::NoAction,                           // overload streak 1 of 2
            ScalingAction::ScaleUp,                            // streak hit → add replica
            ScalingAction::NoAction,                           // cooldown
            ScalingAction::ResizeHighWater { high_water: 12 }, // streak again, at ceiling
            ScalingAction::NoAction,                           // cooldown; 4/12 < 50% now
            ScalingAction::NoAction,                           // steady
        ],
    );
    assert_eq!(router.replica_count("m"), Some(2), "scale-up actuated");
    assert_eq!(router.model_stats("m").unwrap().queue_high_water, 12, "resize actuated");

    // The burst ends: drain, then watch the supervisor walk capacity back.
    drain(&router, "m");
    for t in tickets {
        assert_eq!(t.wait().len(), 3, "parked tickets all delivered by the drain");
    }
    let mut actions = Vec::new();
    for _ in 0..9 {
        tick(&mut sup, &mut actions);
    }
    assert_eq!(
        actions,
        vec![
            ScalingAction::NoAction, // delivery counters moved: healthy, not idle
            ScalingAction::NoAction, // idle streak 1 of 3
            ScalingAction::NoAction, // idle streak 2 of 3
            ScalingAction::ScaleDown,
            ScalingAction::NoAction,                          // cooldown
            ScalingAction::NoAction,                          // idle streak 2 of 3
            ScalingAction::ResizeHighWater { high_water: 8 }, // restore base bound
            ScalingAction::NoAction,                          // cooldown
            ScalingAction::NoAction, // idle at floor and base: converged, no flap
        ],
    );
    assert_eq!(router.replica_count("m"), Some(1));
    assert_eq!(router.model_stats("m").unwrap().queue_high_water, 8);

    // The decision log is timestamped on virtual time, strictly
    // increasing because the script advanced the clock before each tick.
    let stamps: Vec<u64> = sup.decisions().iter().map(|d| d.at_ns).collect();
    assert!(stamps.windows(2).all(|w| w[0] < w[1]), "virtual timestamps must increase");
    assert_eq!(stamps.len(), 15);
    assert_eq!(*stamps.last().unwrap(), clock.now_ns());
    router.shutdown();
}

/// Ramp profile: pressure that approaches the threshold from below never
/// triggers anything (hysteresis); only a *sustained* crossing does, and
/// exactly once.
#[test]
fn ramp_crosses_the_threshold_only_on_sustained_pressure() {
    let router = Arc::new(Router::with_clock(VirtualClock::shared()));
    paused_model(&router, "m", 1, 100);
    let mut sup = Supervisor::new(
        Arc::clone(&router),
        ControlConfig { pressure_pct: 80, cooldown_ticks: 0, ..sim_config() },
    );

    // Ramp: 40 → 60 → 79 pending, all below 80% of 100.
    let mut submitted = 0;
    for target in [40usize, 60, 79] {
        while submitted < target {
            router.submit("m", &sample(submitted)).unwrap();
            submitted += 1;
        }
        let d = sup.tick();
        assert_eq!(d[0].action, ScalingAction::NoAction, "below threshold: {}", d[0].reason);
    }

    // Cross it: 80 pending. One tick builds the streak, the second acts.
    router.submit("m", &sample(submitted)).unwrap();
    assert_eq!(sup.tick()[0].action, ScalingAction::NoAction);
    let d = sup.tick();
    assert_eq!(d[0].action, ScalingAction::ScaleUp);
    assert!(d[0].reason.contains("overloaded 2 consecutive ticks"), "{}", d[0].reason);
    assert_eq!(sup.actions().len(), 1, "exactly one actuation across the whole ramp");

    drain(&router, "m");
    router.shutdown();
}

/// Idle profile: a model that never sees traffic is walked down to the
/// replica floor once and then left alone forever — no flapping.
#[test]
fn idle_profile_converges_to_the_floor_without_flapping() {
    let router = Arc::new(Router::with_clock(VirtualClock::shared()));
    paused_model(&router, "m", 2, 64);
    let mut sup = Supervisor::new(Arc::clone(&router), sim_config());

    for _ in 0..12 {
        sup.tick();
    }
    let actions: Vec<_> = sup.actions().iter().map(|d| d.action.clone()).collect();
    assert_eq!(actions, vec![ScalingAction::ScaleDown], "one walk-down, then converged");
    assert_eq!(router.replica_count("m"), Some(1));
    router.shutdown();
}

/// Shed-triggered overload: a storm that bounces off the admission gate
/// counts as overload through the shed delta even while the queue itself
/// stays shallow — and a consumed delta is not re-counted.
#[test]
fn shed_delta_drives_scale_up_without_queue_pressure() {
    let router = Arc::new(Router::with_clock(VirtualClock::shared()));
    // Wide admission bound (never pressured) but a tiny per-replica cap:
    // overload shows up *only* as replica-level sheds, never as depth.
    let cfg = ModelConfig {
        replicas: 1,
        queue_high_water: 100,
        replica: ServeConfig {
            max_batch: 8,
            max_wait: Duration::ZERO,
            queue_cap: 2,
            ..ServeConfig::default()
        },
        ..ModelConfig::default()
    };
    router.register("m", tiny_plan(11), cfg).unwrap();
    router.pause("m").unwrap();
    let mut sup = Supervisor::new(
        Arc::clone(&router),
        ControlConfig { pressure_pct: 100, cooldown_ticks: 0, ..sim_config() },
    );
    sup.tick(); // baseline tick: records cumulative counters

    // Fill the replica cap, then bounce 3 submissions off it.
    let tickets: Vec<_> = (0..2).map(|s| router.submit("m", &sample(s)).unwrap()).collect();
    for s in 0..3 {
        assert!(router.submit("m", &sample(s)).is_err(), "beyond the cap: shed");
    }
    assert_eq!(sup.tick()[0].action, ScalingAction::NoAction); // shed streak 1 of 2
    for s in 0..3 {
        assert!(router.submit("m", &sample(s)).is_err(), "still shedding");
    }
    let d = sup.tick();
    assert_eq!(d[0].action, ScalingAction::ScaleUp, "{}", d[0].reason);
    assert!(d[0].reason.contains("shed +"), "{}", d[0].reason);
    assert_eq!(router.queue_depth("m"), Some(2), "depth 2/100 never pressured the gate");

    // The consumed shed delta is not re-counted: no new sheds → calm.
    assert_eq!(sup.tick()[0].action, ScalingAction::NoAction);
    drain(&router, "m");
    for t in tickets {
        assert_eq!(t.wait().len(), 3);
    }
    router.shutdown();
}

/// Multi-model ticks observe models in sorted id order, every tick, so
/// interleaved decision logs are reproducible run to run.
#[test]
fn multi_model_ticks_are_deterministically_ordered() {
    let router = Arc::new(Router::with_clock(VirtualClock::shared()));
    paused_model(&router, "zeta", 1, 16);
    paused_model(&router, "alpha", 1, 16);
    let mut sup = Supervisor::new(Arc::clone(&router), sim_config());
    for _ in 0..3 {
        let d = sup.tick();
        let order: Vec<&str> = d.iter().map(|x| x.model.as_str()).collect();
        assert_eq!(order, vec!["alpha", "zeta"]);
    }
    router.shutdown();
}
