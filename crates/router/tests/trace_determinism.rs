//! Request-trace determinism under a [`VirtualClock`]: span timestamps
//! come from the router's clock, Queued spans are recorded under the
//! replica queue lock in admission order, and reroutes add a second
//! Queued span — so an entire burst's trace is asserted span-by-span on
//! exact virtual timestamps, and every admitted id is conserved through
//! to exactly one Executed span.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::SeedableRng;
use scissor_nn::{CompiledNet, NetworkBuilder, Tensor4};
use scissor_router::{Clock, ModelConfig, Router, SpanKind, SpanRecord, TraceId, VirtualClock};

const MS: u64 = 1_000_000;

fn tiny_plan(seed: u64) -> CompiledNet {
    let mut rng = StdRng::seed_from_u64(seed);
    NetworkBuilder::new((1, 4, 4))
        .conv("conv1", 2, 3, 1, 0, &mut rng)
        .relu()
        .linear("fc", 3, &mut rng)
        .build()
        .compile()
        .expect("compile")
}

fn sample(seed: usize) -> Tensor4 {
    Tensor4::from_vec(
        1,
        1,
        4,
        4,
        (0..16).map(|i| ((i * 7 + seed * 13) % 23) as f32 * 0.1 - 1.0).collect(),
    )
}

/// Spans of one trace, in recording order.
fn by_trace(spans: &[SpanRecord]) -> BTreeMap<TraceId, Vec<&SpanRecord>> {
    let mut m: BTreeMap<TraceId, Vec<&SpanRecord>> = BTreeMap::new();
    for s in spans {
        m.entry(s.trace).or_default().push(s);
    }
    m
}

#[test]
fn burst_on_two_replicas_traces_an_exact_span_sequence() {
    let vclock = VirtualClock::shared();
    let router = Router::with_clock(Arc::clone(&vclock) as Arc<dyn Clock>);
    router.enable_tracing();
    router.register("m", tiny_plan(1), ModelConfig::with_replicas(2)).unwrap();
    router.pause("m").unwrap();

    // Six submissions, the clock stepping 1 ms before each: admission
    // timestamps are exactly 1 ms, 2 ms, … 6 ms of virtual time.
    let mut tickets = Vec::new();
    for s in 0..6 {
        vclock.advance(Duration::from_millis(1));
        tickets.push(router.submit("m", &sample(s)).unwrap());
    }
    let ids: Vec<TraceId> =
        tickets.iter().map(|t| t.trace_id().expect("tracing on: every ticket has an id")).collect();
    assert_eq!(
        ids.iter().map(TraceId::as_u64).collect::<Vec<_>>(),
        vec![1, 2, 3, 4, 5, 6],
        "ids are minted sequentially in admission order"
    );

    // Paused replicas: the log holds exactly the six Queued spans, in
    // admission order, each at its exact virtual timestamp.
    let queued = router.trace_log().spans();
    assert_eq!(queued.len(), 6);
    for (i, span) in queued.iter().enumerate() {
        assert_eq!(span.trace, ids[i], "Queued spans appear in admission order");
        assert_eq!(span.kind, SpanKind::Queued);
        assert_eq!(span.at_ns, (i as u64 + 1) * MS, "admission stamped the virtual clock");
        assert_eq!(span.batch, 0, "not yet batched");
        assert_eq!(&*span.form, "f32");
    }

    // Freeze the clock at 10 ms and drain: both replicas flush their
    // whole 3-deep queue as one batch, so every Batched and Executed
    // span lands at exactly 10 ms with batch size 3.
    vclock.set_ns(10 * MS);
    router.resume("m").unwrap();
    for t in tickets {
        t.wait();
    }
    let spans = router.trace_log().spans();
    assert_eq!(spans.len(), 18, "three spans per request");
    let log = router.trace_log();
    assert_eq!(log.minted(), 6);
    assert_eq!(log.recorded(), 18);
    assert_eq!(log.dropped(), 0);

    let traces = by_trace(&spans);
    assert_eq!(
        traces.keys().copied().collect::<Vec<_>>(),
        ids,
        "every admitted id — and nothing else — completed"
    );
    let mut per_replica: BTreeMap<u64, usize> = BTreeMap::new();
    for (id, spans) in &traces {
        let kinds: Vec<SpanKind> = spans.iter().map(|s| s.kind).collect();
        assert_eq!(
            kinds,
            vec![SpanKind::Queued, SpanKind::Batched, SpanKind::Executed],
            "{id}: full lifecycle, each stage exactly once"
        );
        assert!(
            spans.iter().all(|s| s.replica == spans[0].replica),
            "{id}: never left its replica"
        );
        assert_eq!(spans[1].at_ns, 10 * MS, "{id}: batched at the frozen clock");
        assert_eq!(spans[2].at_ns, 10 * MS, "{id}: executed at the frozen clock");
        assert_eq!(spans[1].batch, 3, "{id}: the replica drained its queue as one batch");
        assert_eq!(spans[2].batch, 3);
        *per_replica.entry(spans[0].replica).or_default() += 1;
    }
    assert_eq!(
        per_replica.values().copied().collect::<Vec<_>>(),
        vec![3, 3],
        "least-loaded routing split the burst evenly across the two replicas"
    );
}

#[test]
fn scale_down_reroutes_record_a_second_queued_span_and_conserve_ids() {
    let vclock = VirtualClock::shared();
    let router = Router::with_clock(Arc::clone(&vclock) as Arc<dyn Clock>);
    router.enable_tracing();
    router.register("m", tiny_plan(2), ModelConfig::with_replicas(2)).unwrap();
    router.pause("m").unwrap();

    let mut tickets = Vec::new();
    for s in 0..4 {
        vclock.advance(Duration::from_millis(1));
        tickets.push(router.submit("m", &sample(s)).unwrap());
    }
    let admitted: BTreeSet<TraceId> = tickets.iter().map(|t| t.trace_id().unwrap()).collect();
    assert_eq!(admitted.len(), 4);

    // Tear one replica down at t = 20 ms: its two pending requests are
    // rerouted into the survivor, each recording a second Queued span
    // stamped with the reroute time and the surviving replica's id.
    vclock.set_ns(20 * MS);
    assert_eq!(router.scale_down("m").unwrap(), 1);
    let spans = router.trace_log().spans();
    let rerouted: Vec<&SpanRecord> =
        spans.iter().filter(|s| s.kind == SpanKind::Queued && s.at_ns == 20 * MS).collect();
    assert_eq!(rerouted.len(), 2, "the victim's two pending requests re-queued");

    vclock.set_ns(30 * MS);
    router.resume("m").unwrap();
    for t in tickets {
        t.wait();
    }

    let spans = router.trace_log().spans();
    let traces = by_trace(&spans);
    assert_eq!(traces.keys().copied().collect::<BTreeSet<_>>(), admitted, "no id lost or minted");
    let mut twice_queued = 0;
    for (id, spans) in &traces {
        let queued = spans.iter().filter(|s| s.kind == SpanKind::Queued).count();
        let executed = spans.iter().filter(|s| s.kind == SpanKind::Executed).count();
        assert!(queued == 1 || queued == 2, "{id}: queued once, or twice after a reroute");
        assert_eq!(executed, 1, "{id}: rerouted or not, executed exactly once");
        let exec = spans.iter().find(|s| s.kind == SpanKind::Executed).unwrap();
        assert_eq!(exec.at_ns, 30 * MS, "{id}: executed at the frozen clock");
        assert_eq!(exec.batch, 4, "the survivor drained all four as one batch");
        if queued == 2 {
            twice_queued += 1;
        }
    }
    assert_eq!(twice_queued, 2, "exactly the victim's backlog was rerouted");
}
