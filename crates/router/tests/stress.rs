//! Router stress tests: many caller threads spraying requests across
//! multiple models × multiple replicas must get logits bitwise identical
//! to direct `CompiledNet::infer_into` passes, shed cleanly at the
//! admission bound, and lose nothing admitted on shutdown.

use std::sync::Arc;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::SeedableRng;

use scissor_nn::{CompiledNet, NetworkBuilder, Tensor4};
use scissor_router::{ModelConfig, Router, RouterError, ServeConfig, Ticket};

/// A LeNet-shaped mini plan (1×6×6 input) and a ConvNet-shaped one
/// (2×6×6), distinct enough that routing to the wrong model would change
/// every logit.
fn plan_a() -> CompiledNet {
    let mut rng = StdRng::seed_from_u64(31);
    NetworkBuilder::new((1, 6, 6))
        .conv("conv1", 4, 3, 1, 1, &mut rng)
        .relu()
        .maxpool(2, 2)
        .linear("fc", 5, &mut rng)
        .build()
        .compile()
        .expect("compile")
}

fn plan_b() -> CompiledNet {
    let mut rng = StdRng::seed_from_u64(32);
    NetworkBuilder::new((2, 6, 6))
        .conv("conv1", 3, 3, 1, 0, &mut rng)
        .relu()
        .linear("fc", 4, &mut rng)
        .build()
        .compile()
        .expect("compile")
}

fn sample_a(thread: usize, request: usize) -> Tensor4 {
    let seed = thread * 1009 + request * 31;
    Tensor4::from_vec(
        1,
        1,
        6,
        6,
        (0..36).map(|i| ((i * 7 + seed) % 53) as f32 * 0.07 - 1.7).collect(),
    )
}

fn sample_b(thread: usize, request: usize) -> Tensor4 {
    let seed = thread * 911 + request * 17;
    Tensor4::from_vec(
        1,
        2,
        6,
        6,
        (0..72).map(|i| ((i * 5 + seed) % 47) as f32 * 0.09 - 1.9).collect(),
    )
}

#[test]
fn two_models_two_replicas_concurrent_bit_equality() {
    let ref_a = Arc::new(plan_a());
    let ref_b = Arc::new(plan_b());
    let router = Arc::new(Router::new());
    let cfg = ModelConfig {
        replicas: 2,
        queue_high_water: 10_000,
        replica: ServeConfig {
            max_batch: 8,
            max_wait: Duration::from_micros(200),
            ..ServeConfig::default()
        },
        ..ModelConfig::default()
    };
    router.register_shared("lenet", Arc::clone(&ref_a), cfg).unwrap();
    router.register_shared("convnet", Arc::clone(&ref_b), cfg).unwrap();

    // 8 threads interleave submissions to both models, redeeming tickets
    // out of order (half polled, half blocked) to stress the slots.
    let threads = 8;
    let requests = 20;
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let router = Arc::clone(&router);
            std::thread::spawn(move || {
                let mut out = Vec::new();
                for r in 0..requests {
                    let ta = router.submit("lenet", &sample_a(t, r)).expect("submit a");
                    let tb = router.submit("convnet", &sample_b(t, r)).expect("submit b");
                    // Redeem b first (reverse submission order), poll a.
                    let got_b = tb.wait();
                    let got_a = loop {
                        if let Some(v) = ta.try_take() {
                            break v;
                        }
                        std::thread::yield_now();
                    };
                    out.push((r, got_a, got_b));
                }
                out
            })
        })
        .collect();

    for (t, h) in handles.into_iter().enumerate() {
        for (r, got_a, got_b) in h.join().expect("caller thread") {
            let want_a = ref_a.infer(&sample_a(t, r));
            let want_b = ref_b.infer(&sample_b(t, r));
            let bits_a =
                got_a.iter().zip(want_a.as_slice()).all(|(x, y)| x.to_bits() == y.to_bits());
            let bits_b =
                got_b.iter().zip(want_b.as_slice()).all(|(x, y)| x.to_bits() == y.to_bits());
            assert!(bits_a, "thread {t} request {r}: lenet logits must be bitwise identical");
            assert!(bits_b, "thread {t} request {r}: convnet logits must be bitwise identical");
        }
    }

    let stats = router.stats();
    let total: u64 = stats.iter().map(|(_, s)| s.serve.requests).sum();
    assert_eq!(total as usize, threads * requests * 2);
    for (name, s) in &stats {
        assert_eq!(s.shed, 0, "{name} must not shed under the huge bound");
        assert_eq!(s.serve.queue_depth, 0, "{name} backlog must be drained");
        assert_eq!(s.serve.samples, s.serve.requests);
        assert!(s.serve.p50_latency() <= s.serve.p99_latency());
    }
}

#[test]
fn open_loop_overload_sheds_and_recovers() {
    // Paused model with a 12-deep admission bound: 4 threads fire 30
    // non-blocking submissions each. Exactly 12 are admitted (modulo the
    // documented racer overshoot — here submissions are concurrent, so
    // allow admitted ∈ [12, 12 + threads]), the rest shed with
    // `Overloaded`, and every admitted ticket delivers exact logits after
    // resume.
    let reference = Arc::new(plan_a());
    let router = Arc::new(Router::new());
    let high_water = 12;
    let cfg = ModelConfig {
        replicas: 2,
        queue_high_water: high_water,
        replica: ServeConfig { max_batch: 4, max_wait: Duration::ZERO, ..ServeConfig::default() },
        ..ModelConfig::default()
    };
    router.register_shared("m", Arc::clone(&reference), cfg).unwrap();
    router.pause("m").unwrap();

    let threads = 4;
    let per_thread = 30;
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let router = Arc::clone(&router);
            std::thread::spawn(move || {
                (0..per_thread)
                    .map(|r| (t, r, router.submit("m", &sample_a(t, r))))
                    .collect::<Vec<_>>()
            })
        })
        .collect();
    let outcomes: Vec<(usize, usize, Result<Ticket, RouterError>)> =
        handles.into_iter().flat_map(|h| h.join().expect("caller thread")).collect();

    let admitted = outcomes.iter().filter(|(_, _, o)| o.is_ok()).count();
    let shed = outcomes
        .iter()
        .filter(|(_, _, o)| matches!(o, Err(RouterError::Overloaded { .. })))
        .count();
    assert_eq!(admitted + shed, threads * per_thread, "every outcome is admit or shed");
    assert!(
        admitted >= high_water && admitted <= high_water + threads,
        "admitted {admitted} outside [{high_water}, {}]",
        high_water + threads
    );
    // Each rejection lands in exactly one counter: the router's admission
    // gate or (for gate-racers) the chosen replica's own cap.
    let stats = router.model_stats("m").unwrap();
    assert_eq!(stats.total_shed() as usize, shed);
    assert_eq!(stats.serve.queue_depth as usize, admitted);

    router.resume("m").unwrap();
    for (t, r, outcome) in outcomes {
        if let Ok(ticket) = outcome {
            let want = reference.infer(&sample_a(t, r));
            let got = ticket.wait();
            let bits = got.iter().zip(want.as_slice()).all(|(x, y)| x.to_bits() == y.to_bits());
            assert!(bits, "thread {t} request {r}: admitted logits must be exact");
        }
    }
    // Recovered: the backlog is gone and fresh admissions flow again.
    assert_eq!(router.queue_depth("m"), Some(0));
    let t = router.submit("m", &sample_a(9, 9)).unwrap();
    assert_eq!(t.wait().as_slice(), reference.infer(&sample_a(9, 9)).as_slice());
}

#[test]
fn shutdown_drains_every_admitted_ticket_across_models() {
    let ref_a = Arc::new(plan_a());
    let ref_b = Arc::new(plan_b());
    let router = Router::new();
    let cfg = ModelConfig {
        replicas: 2,
        queue_high_water: 64,
        replica: ServeConfig {
            max_batch: 4,
            max_wait: Duration::from_millis(50),
            ..ServeConfig::default()
        },
        ..ModelConfig::default()
    };
    router.register_shared("a", Arc::clone(&ref_a), cfg).unwrap();
    router.register_shared("b", Arc::clone(&ref_b), cfg).unwrap();
    router.pause("a").unwrap();
    router.pause("b").unwrap();
    let tickets_a: Vec<Ticket> =
        (0..10).map(|r| router.submit("a", &sample_a(0, r)).expect("admit a")).collect();
    let tickets_b: Vec<Ticket> =
        (0..10).map(|r| router.submit("b", &sample_b(0, r)).expect("admit b")).collect();

    // Shutdown must override the pause, deliver everything admitted, and
    // only then return.
    router.shutdown();
    for (r, t) in tickets_a.into_iter().enumerate() {
        let got = t.try_take().expect("ticket a drained");
        assert_eq!(got.as_slice(), ref_a.infer(&sample_a(0, r)).as_slice(), "a/{r}");
    }
    for (r, t) in tickets_b.into_iter().enumerate() {
        let got = t.try_take().expect("ticket b drained");
        assert_eq!(got.as_slice(), ref_b.infer(&sample_b(0, r)).as_slice(), "b/{r}");
    }
    assert!(matches!(router.submit("a", &sample_a(0, 0)), Err(RouterError::ShuttingDown)));
}

#[test]
fn replicas_share_one_plan_zero_weight_copies() {
    let plan = Arc::new(plan_a());
    let router = Router::new();
    router.register_shared("m", Arc::clone(&plan), ModelConfig::with_replicas(4)).unwrap();
    // 4 replicas + the registry entry + ours: replication did not clone
    // the plan.
    assert_eq!(Arc::strong_count(&plan), 6);
    drop(router);
    assert_eq!(Arc::strong_count(&plan), 1);
}
