//! The autoscaling control plane: a supervisor loop that watches every
//! model's serving counters and actuates the [`Router`]'s runtime knobs.
//!
//! The split mirrors classic control-plane design — and keeps the whole
//! loop testable on simulated time:
//!
//! * **Observation** ([`ModelObservation`]): a plain-data snapshot of one
//!   model's load picture (backlog, bound, replica count, cumulative
//!   request/shed counters, per-replica service-time EWMAs), assembled
//!   from the router's lock-free stats accessors.
//! * **Policy** ([`decide`]): a *pure function* from observation +
//!   per-model [`ControlState`] to a [`ScalingAction`] with a
//!   human-readable reason. No clocks, no I/O, no randomness — the
//!   property and simulation tests drive it exhaustively.
//! * **Actuation** ([`Supervisor::tick`]): applies the chosen action
//!   through [`Router::scale_up`] / [`Router::scale_down`] /
//!   [`Router::set_high_water`] / [`Router::rebalance`] and appends the
//!   decision (timestamped via the router's [`Clock`](crate::Clock)) to a
//!   bounded log.
//!
//! Hysteresis is explicit: scale-up requires `up_streak` *consecutive*
//! overloaded ticks, scale-down `down_streak` consecutive idle ticks, and
//! every actuation starts a `cooldown_ticks`-long refractory period —
//! three independent brakes against flapping. Streaks keep accumulating
//! during cooldown (the evidence is real; only the actuation is held), so
//! a genuine sustained overload acts on the first post-cooldown tick.
//!
//! Production runs the loop on a thread ([`Supervisor::spawn`]) with a
//! wall-clock interval; the deterministic tests call
//! [`Supervisor::tick`] directly under a
//! [`VirtualClock`](crate::VirtualClock) and assert on the exact decision
//! sequence.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::{Router, RouterError};

/// Decisions the supervisor can take for one model on one tick.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScalingAction {
    /// Add one replica ([`Router::scale_up`]).
    ScaleUp,
    /// Remove one replica, rerouting its backlog ([`Router::scale_down`]).
    ScaleDown,
    /// Reset routing state: round-robin origin and per-replica EWMAs
    /// ([`Router::rebalance`]), plus a tile recalibration when
    /// [`ControlConfig::calibrate_rounds`] is non-zero.
    Rebalance,
    /// Resize the admission bound to `high_water`
    /// ([`Router::set_high_water`]; the actuator clamps to the in-flight
    /// depth, so the effective value may be higher).
    ResizeHighWater {
        /// The requested new admission high-water mark.
        high_water: usize,
    },
    /// Leave the model alone this tick.
    NoAction,
}

impl ScalingAction {
    /// Stable snake_case label — the suffix of the supervisor's
    /// `ctrl.decisions.*` registry counters (the `ResizeHighWater`
    /// payload is dropped; the counter tracks the action kind).
    pub fn label(&self) -> &'static str {
        match self {
            ScalingAction::ScaleUp => "scale_up",
            ScalingAction::ScaleDown => "scale_down",
            ScalingAction::Rebalance => "rebalance",
            ScalingAction::ResizeHighWater { .. } => "resize_high_water",
            ScalingAction::NoAction => "no_action",
        }
    }
}

/// One supervisor decision: which model, what action, why, when.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScalingDecision {
    /// The model the decision applies to.
    pub model: String,
    /// What the supervisor chose to do.
    pub action: ScalingAction,
    /// Human-readable explanation with the numbers that drove it.
    pub reason: String,
    /// Decision time from the router's clock (virtual time in tests).
    pub at_ns: u64,
}

/// Supervisor policy knobs.
///
/// [`ControlConfig::from_env`] applies the `GS_CTRL_*` environment
/// overrides documented per field; `Default` is pure (no environment
/// reads) so tests are hermetic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ControlConfig {
    /// Wall-clock period between [`Supervisor::spawn`] ticks
    /// (`GS_CTRL_INTERVAL_MS`). Deterministic tests bypass it by calling
    /// [`Supervisor::tick`] directly.
    pub interval: Duration,
    /// Consecutive overloaded ticks required before a scale-up
    /// (`GS_CTRL_UP_STREAK`). The scale-up half of the hysteresis band.
    pub up_streak: u32,
    /// Consecutive idle ticks required before a scale-down
    /// (`GS_CTRL_DOWN_STREAK`). The scale-down half of the band.
    pub down_streak: u32,
    /// Refractory ticks after any actuation during which the model is
    /// left alone (`GS_CTRL_COOLDOWN`).
    pub cooldown_ticks: u32,
    /// A tick is *overloaded* when submissions were shed since the last
    /// tick, or the backlog is at or above this percentage of the
    /// admission bound (`GS_CTRL_PRESSURE_PCT`).
    pub pressure_pct: u8,
    /// Replica ceiling for scale-up (`GS_CTRL_MAX_REPLICAS`). At the
    /// ceiling, sustained overload widens the admission bound instead.
    pub max_replicas: usize,
    /// Replica floor for scale-down (`GS_CTRL_MIN_REPLICAS`).
    pub min_replicas: usize,
    /// Rebalance when the slowest replica's service-time EWMA exceeds
    /// the fastest's by this ratio × 100 (`GS_CTRL_DRIFT_PCT`; e.g.
    /// `300` = 3× drift). Requires every replica to have an estimate.
    pub drift_pct: u32,
    /// Timed rounds per tile-calibration candidate
    /// (`GS_CTRL_CALIBRATE_ROUNDS`); `0` disables calibration — what
    /// the deterministic suites use, since calibration measures real
    /// wall time by construction.
    pub calibrate_rounds: usize,
}

impl Default for ControlConfig {
    fn default() -> Self {
        Self {
            interval: Duration::from_millis(50),
            up_streak: 2,
            down_streak: 4,
            cooldown_ticks: 2,
            pressure_pct: 80,
            max_replicas: 8,
            min_replicas: 1,
            drift_pct: 300,
            calibrate_rounds: 0,
        }
    }
}

impl ControlConfig {
    /// The defaults with any `GS_CTRL_*` environment overrides applied
    /// (unparsable or out-of-range values are ignored, keeping the
    /// default — consistent with `GS_TILE_BATCH` handling in the compiler).
    pub fn from_env() -> Self {
        let mut cfg = Self::default();
        if let Some(ms) = env_u64("GS_CTRL_INTERVAL_MS") {
            cfg.interval = Duration::from_millis(ms);
        }
        if let Some(v) = env_u64("GS_CTRL_UP_STREAK").filter(|&v| v > 0) {
            cfg.up_streak = v as u32;
        }
        if let Some(v) = env_u64("GS_CTRL_DOWN_STREAK").filter(|&v| v > 0) {
            cfg.down_streak = v as u32;
        }
        if let Some(v) = env_u64("GS_CTRL_COOLDOWN") {
            cfg.cooldown_ticks = v as u32;
        }
        if let Some(v) = env_u64("GS_CTRL_PRESSURE_PCT").filter(|&v| (1..=100).contains(&v)) {
            cfg.pressure_pct = v as u8;
        }
        if let Some(v) = env_u64("GS_CTRL_MAX_REPLICAS").filter(|&v| v > 0) {
            cfg.max_replicas = v as usize;
        }
        if let Some(v) = env_u64("GS_CTRL_MIN_REPLICAS").filter(|&v| v > 0) {
            cfg.min_replicas = v as usize;
        }
        if let Some(v) = env_u64("GS_CTRL_DRIFT_PCT").filter(|&v| v > 100) {
            cfg.drift_pct = v as u32;
        }
        if let Some(v) = env_u64("GS_CTRL_CALIBRATE_ROUNDS") {
            cfg.calibrate_rounds = v as usize;
        }
        cfg
    }
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok().and_then(|s| s.trim().parse::<u64>().ok())
}

/// One model's load picture at a supervisor tick — plain data, so the
/// policy can be driven synthetically in tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelObservation {
    /// Pending requests across the model's replicas.
    pub depth: usize,
    /// The current admission high-water mark.
    pub high_water: usize,
    /// Current replica count.
    pub replicas: usize,
    /// Cumulative admitted submissions.
    pub requests: u64,
    /// Cumulative sheds (admission gate + replica caps).
    pub shed: u64,
    /// Per-replica service-time EWMAs, ns (`0` = no estimate yet).
    pub ewma_ns: Vec<u64>,
}

/// Per-model controller memory carried across ticks: the streak counters
/// implementing hysteresis, the cooldown timer, the counter baselines
/// the per-tick deltas are computed against, and the registration-time
/// admission bound the controller shrinks back toward.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ControlState {
    overload_streak: u32,
    idle_streak: u32,
    cooldown: u32,
    last_requests: u64,
    last_shed: u64,
    base_high_water: usize,
}

impl ControlState {
    /// Fresh state for a model first observed with `obs`: counter
    /// baselines start at the current cumulative values (history from
    /// before the supervisor existed is not evidence) and the current
    /// bound is recorded as the shrink-back target.
    pub fn new(obs: &ModelObservation) -> Self {
        Self {
            overload_streak: 0,
            idle_streak: 0,
            cooldown: 0,
            last_requests: obs.requests,
            last_shed: obs.shed,
            base_high_water: obs.high_water,
        }
    }
}

/// The policy: folds one observation into `state` and returns the action
/// for this tick with its reason. Pure and deterministic — identical
/// `(state, obs)` always yields the identical decision.
///
/// Priority order (first match wins): hold during cooldown → scale up
/// (or widen the bound at the replica ceiling) on sustained overload →
/// scale down (or shrink the bound toward its registration value) on
/// sustained idleness → rebalance on per-replica EWMA drift → no action.
pub fn decide(
    cfg: &ControlConfig,
    state: &mut ControlState,
    obs: &ModelObservation,
) -> (ScalingAction, String) {
    let req_delta = obs.requests.saturating_sub(state.last_requests);
    let shed_delta = obs.shed.saturating_sub(state.last_shed);
    state.last_requests = obs.requests;
    state.last_shed = obs.shed;

    let overloaded =
        shed_delta > 0 || obs.depth * 100 >= usize::from(cfg.pressure_pct) * obs.high_water;
    let idle = shed_delta == 0 && req_delta == 0 && obs.depth == 0;
    if overloaded {
        state.overload_streak += 1;
        state.idle_streak = 0;
    } else if idle {
        state.idle_streak += 1;
        state.overload_streak = 0;
    } else {
        // Healthy traffic: neither brake has evidence.
        state.overload_streak = 0;
        state.idle_streak = 0;
    }

    if state.cooldown > 0 {
        state.cooldown -= 1;
        return (ScalingAction::NoAction, format!("cooldown ({} ticks left)", state.cooldown));
    }

    if state.overload_streak >= cfg.up_streak {
        state.overload_streak = 0;
        state.cooldown = cfg.cooldown_ticks;
        if obs.replicas < cfg.max_replicas {
            return (
                ScalingAction::ScaleUp,
                format!(
                    "overloaded {} consecutive ticks (shed +{shed_delta}, depth {}/{})",
                    cfg.up_streak, obs.depth, obs.high_water
                ),
            );
        }
        // At the replica ceiling more compute is off the table; trade
        // latency for availability by widening admission 50%.
        let wider = obs.high_water + (obs.high_water / 2).max(1);
        return (
            ScalingAction::ResizeHighWater { high_water: wider },
            format!(
                "overloaded at replica ceiling {} — widening admission {} → {wider}",
                cfg.max_replicas, obs.high_water
            ),
        );
    }

    if state.idle_streak >= cfg.down_streak {
        state.idle_streak = 0;
        if obs.replicas > cfg.min_replicas {
            state.cooldown = cfg.cooldown_ticks;
            return (
                ScalingAction::ScaleDown,
                format!(
                    "idle {} consecutive ticks with {} replicas (floor {})",
                    cfg.down_streak, obs.replicas, cfg.min_replicas
                ),
            );
        }
        if obs.high_water > state.base_high_water {
            state.cooldown = cfg.cooldown_ticks;
            return (
                ScalingAction::ResizeHighWater { high_water: state.base_high_water },
                format!(
                    "idle at replica floor — restoring admission {} → {}",
                    obs.high_water, state.base_high_water
                ),
            );
        }
        return (ScalingAction::NoAction, "idle at replica floor and base admission".into());
    }

    if obs.ewma_ns.len() >= 2 && obs.ewma_ns.iter().all(|&e| e > 0) {
        let fastest = *obs.ewma_ns.iter().min().expect("non-empty");
        let slowest = *obs.ewma_ns.iter().max().expect("non-empty");
        if slowest.saturating_mul(100) >= fastest.saturating_mul(u64::from(cfg.drift_pct)) {
            state.cooldown = cfg.cooldown_ticks;
            return (
                ScalingAction::Rebalance,
                format!("service-time drift {slowest}ns vs {fastest}ns exceeds {}%", cfg.drift_pct),
            );
        }
    }

    (ScalingAction::NoAction, format!("steady (depth {}/{})", obs.depth, obs.high_water))
}

/// Decisions retained in the supervisor's in-memory log.
const LOG_CAP: usize = 256;

/// The control loop: observes every registered model, runs [`decide`],
/// actuates the router, and keeps a bounded decision log.
pub struct Supervisor {
    router: Arc<Router>,
    cfg: ControlConfig,
    states: HashMap<String, ControlState>,
    log: Vec<ScalingDecision>,
}

impl Supervisor {
    /// A supervisor over `router`. No thread is started; call
    /// [`Supervisor::tick`] yourself (deterministic) or hand the
    /// supervisor to [`Supervisor::spawn`] (production).
    pub fn new(router: Arc<Router>, cfg: ControlConfig) -> Self {
        Self { router, cfg, states: HashMap::new(), log: Vec::new() }
    }

    /// The active policy knobs.
    pub fn config(&self) -> &ControlConfig {
        &self.cfg
    }

    /// Observes `model` through the router's stats accessors; `None` if
    /// it is not (or no longer) registered.
    pub fn observe(&self, model: &str) -> Option<ModelObservation> {
        let stats = self.router.model_stats(model)?;
        let ewma_ns = self.router.replica_ewma_service_ns(model)?;
        Some(ModelObservation {
            depth: stats.serve.queue_depth as usize,
            high_water: stats.queue_high_water,
            replicas: stats.replicas,
            requests: stats.serve.requests,
            shed: stats.total_shed(),
            ewma_ns,
        })
    }

    /// One control-loop pass: observe → decide → actuate for every
    /// registered model (sorted order, so multi-model ticks are
    /// deterministic). Returns this tick's decisions; they are also
    /// appended to [`Supervisor::decisions`].
    ///
    /// A model observed for the first time gets [`ControlState::new`]
    /// baselines and — when [`ControlConfig::calibrate_rounds`] is
    /// non-zero — a warm-up tile calibration on its shared plan.
    /// [`ScalingAction::Rebalance`] re-runs that calibration, re-planning
    /// the tile from fresh measurements after latency drift.
    pub fn tick(&mut self) -> Vec<ScalingDecision> {
        let mut out = Vec::new();
        let registry = self.router.registry();
        for model in self.router.models() {
            let Some(obs) = self.observe(&model) else { continue };
            let state = match self.states.entry(model.clone()) {
                std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
                std::collections::hash_map::Entry::Vacant(v) => {
                    if self.cfg.calibrate_rounds > 0 {
                        let _ = self.router.calibrate_tiles(&model, self.cfg.calibrate_rounds);
                    }
                    v.insert(ControlState::new(&obs))
                }
            };
            let (action, mut reason) = decide(&self.cfg, state, &obs);
            if let Err(e) = apply(&self.router, &self.cfg, &model, &action) {
                // The world moved between observe and actuate (e.g. the
                // model was deregistered, or depth changed under a
                // resize). Record what happened; next tick re-observes.
                reason = format!("{reason}; actuation failed: {e}");
            }
            let decision =
                ScalingDecision { model, action, reason, at_ns: self.router.clock().now_ns() };
            // Every decision (heartbeats included) lands in the router's
            // registry, so `observability_snapshot()` exposes how often
            // each actuator fired and why the last one did.
            registry.counter(&format!("ctrl.decisions.{}", decision.action.label())).inc();
            if decision.action != ScalingAction::NoAction {
                registry
                    .text("ctrl.last_action")
                    .set(format!("{}: {}", decision.model, decision.reason));
            }
            out.push(decision.clone());
            self.log.push(decision);
        }
        if self.log.len() > LOG_CAP {
            let excess = self.log.len() - LOG_CAP;
            self.log.drain(..excess);
        }
        out
    }

    /// The decision log, oldest first (bounded to the most recent 256).
    pub fn decisions(&self) -> &[ScalingDecision] {
        &self.log
    }

    /// Decisions that actually did something — the log without the
    /// `NoAction` heartbeat entries; what the simulation tests assert on.
    pub fn actions(&self) -> Vec<&ScalingDecision> {
        self.log.iter().filter(|d| d.action != ScalingAction::NoAction).collect()
    }

    /// Runs the loop on a new thread every [`ControlConfig::interval`]
    /// until `stop` becomes true; returns the supervisor (with its log)
    /// on join. Production entry point — tests use [`Supervisor::tick`].
    pub fn spawn(mut self, stop: Arc<AtomicBool>) -> std::thread::JoinHandle<Supervisor> {
        std::thread::spawn(move || {
            while !stop.load(Ordering::Acquire) {
                self.tick();
                std::thread::sleep(self.cfg.interval);
            }
            self
        })
    }
}

impl std::fmt::Debug for Supervisor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Supervisor({} models, {} logged decisions)", self.states.len(), self.log.len())
    }
}

/// Routes one decision to its router actuator.
fn apply(
    router: &Router,
    cfg: &ControlConfig,
    model: &str,
    action: &ScalingAction,
) -> Result<(), RouterError> {
    match action {
        ScalingAction::ScaleUp => router.scale_up(model).map(|_| ()),
        ScalingAction::ScaleDown => router.scale_down(model).map(|_| ()),
        ScalingAction::ResizeHighWater { high_water } => {
            router.set_high_water(model, *high_water).map(|_| ())
        }
        ScalingAction::Rebalance => {
            router.rebalance(model)?;
            if cfg.calibrate_rounds > 0 {
                router.calibrate_tiles(model, cfg.calibrate_rounds)?;
            }
            Ok(())
        }
        ScalingAction::NoAction => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(depth: usize, high_water: usize, replicas: usize) -> ModelObservation {
        ModelObservation { depth, high_water, replicas, requests: 0, shed: 0, ewma_ns: vec![] }
    }

    #[test]
    fn scale_up_needs_a_streak_and_respects_the_ceiling() {
        let cfg = ControlConfig { up_streak: 2, cooldown_ticks: 0, ..ControlConfig::default() };
        let o = obs(90, 100, 2); // 90% ≥ pressure 80%
        let mut st = ControlState::new(&o);
        assert_eq!(decide(&cfg, &mut st, &o).0, ScalingAction::NoAction); // streak 1
        assert_eq!(decide(&cfg, &mut st, &o).0, ScalingAction::ScaleUp); // streak 2
                                                                         // At the ceiling the same pressure widens admission instead.
        let o = obs(90, 100, cfg.max_replicas);
        let mut st = ControlState::new(&o);
        decide(&cfg, &mut st, &o);
        assert_eq!(decide(&cfg, &mut st, &o).0, ScalingAction::ResizeHighWater { high_water: 150 });
    }

    #[test]
    fn shed_delta_alone_counts_as_overload() {
        let cfg = ControlConfig { up_streak: 1, ..ControlConfig::default() };
        let mut o = obs(0, 100, 1);
        let mut st = ControlState::new(&o);
        o.shed = 5; // sheds happened since the baseline
        assert_eq!(decide(&cfg, &mut st, &o).0, ScalingAction::ScaleUp);
        // The delta was consumed: unchanged cumulative shed is not
        // re-counted next tick (depth 0 now reads idle).
        let (a, _) = decide(&cfg, &mut st, &o);
        assert_eq!(a, ScalingAction::NoAction);
    }

    #[test]
    fn scale_down_waits_for_idle_streak_and_floor() {
        let cfg = ControlConfig {
            down_streak: 3,
            cooldown_ticks: 0,
            min_replicas: 1,
            ..ControlConfig::default()
        };
        let o = obs(0, 100, 2);
        let mut st = ControlState::new(&o);
        assert_eq!(decide(&cfg, &mut st, &o).0, ScalingAction::NoAction);
        assert_eq!(decide(&cfg, &mut st, &o).0, ScalingAction::NoAction);
        assert_eq!(decide(&cfg, &mut st, &o).0, ScalingAction::ScaleDown);
        // At the floor with a widened bound: restore the base instead.
        let mut o = obs(0, 150, 1);
        let mut st = ControlState::new(&o);
        st.base_high_water = 100;
        o.high_water = 150;
        for _ in 0..2 {
            assert_eq!(decide(&cfg, &mut st, &o).0, ScalingAction::NoAction);
        }
        assert_eq!(decide(&cfg, &mut st, &o).0, ScalingAction::ResizeHighWater { high_water: 100 });
    }

    #[test]
    fn cooldown_holds_actuation_but_keeps_counting() {
        let cfg = ControlConfig { up_streak: 2, cooldown_ticks: 3, ..ControlConfig::default() };
        let o = obs(90, 100, 2);
        let mut st = ControlState::new(&o);
        decide(&cfg, &mut st, &o);
        assert_eq!(decide(&cfg, &mut st, &o).0, ScalingAction::ScaleUp);
        // Three cooldown ticks: pressure persists but nothing actuates.
        for _ in 0..3 {
            let (a, reason) = decide(&cfg, &mut st, &o);
            assert_eq!(a, ScalingAction::NoAction);
            assert!(reason.contains("cooldown"), "{reason}");
        }
        // Streak accumulated through cooldown: first free tick fires.
        assert_eq!(decide(&cfg, &mut st, &o).0, ScalingAction::ScaleUp);
    }

    #[test]
    fn drift_triggers_rebalance_only_with_full_estimates() {
        let cfg = ControlConfig { drift_pct: 300, ..ControlConfig::default() };
        let mut o = obs(10, 100, 2); // healthy traffic, not overloaded/idle
        o.requests = 1;
        let mut st = ControlState::new(&o);
        o.requests = 2;
        o.ewma_ns = vec![1_000, 0]; // one replica unmeasured: no rebalance
        assert_eq!(decide(&cfg, &mut st, &o).0, ScalingAction::NoAction);
        o.requests = 3;
        o.ewma_ns = vec![1_000, 2_999]; // < 3×
        assert_eq!(decide(&cfg, &mut st, &o).0, ScalingAction::NoAction);
        o.requests = 4;
        o.ewma_ns = vec![1_000, 3_000]; // exactly 3×
        assert_eq!(decide(&cfg, &mut st, &o).0, ScalingAction::Rebalance);
    }

    #[test]
    fn env_overrides_parse_and_validate() {
        // Hermetic: exercise the parser helper, not the process env.
        assert_eq!(super::env_u64("GS_CTRL_DEFINITELY_UNSET_VAR_XYZ"), None);
        let cfg = ControlConfig::default();
        assert_eq!(cfg.up_streak, 2);
        assert_eq!(cfg.min_replicas, 1);
        assert!(cfg.pressure_pct <= 100);
    }
}
