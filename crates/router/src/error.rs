//! Error type for the routing tier.

use std::error::Error;
use std::fmt;

use scissor_serve::ServeError;

/// Errors produced by `scissor-router`.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RouterError {
    /// No model registered under this id.
    UnknownModel {
        /// The model id that failed to resolve.
        model: String,
    },
    /// A model with this id is already registered.
    DuplicateModel {
        /// The contested model id.
        model: String,
    },
    /// Registration was given a zero replica count or high-water mark.
    InvalidConfig {
        /// What was wrong.
        reason: &'static str,
    },
    /// The model's admission queue passed its high-water mark; the
    /// request was shed instead of admitted.
    Overloaded {
        /// The overloaded model id.
        model: String,
        /// Pending requests across the model's replicas at rejection.
        depth: usize,
        /// The model's configured high-water mark.
        high_water: usize,
    },
    /// The router is shutting down and no longer accepts submissions.
    ShuttingDown,
    /// A validation error from the replica tier (shape/feature mismatch).
    Serve(ServeError),
}

impl fmt::Display for RouterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouterError::UnknownModel { model } => write!(f, "no model registered as {model:?}"),
            RouterError::DuplicateModel { model } => {
                write!(f, "a model is already registered as {model:?}")
            }
            RouterError::InvalidConfig { reason } => write!(f, "invalid model config: {reason}"),
            RouterError::Overloaded { model, depth, high_water } => write!(
                f,
                "model {model:?} overloaded ({depth} pending ≥ high water {high_water}); \
                 request shed"
            ),
            RouterError::ShuttingDown => write!(f, "router is shutting down"),
            RouterError::Serve(e) => write!(f, "replica rejected submission: {e}"),
        }
    }
}

impl Error for RouterError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RouterError::Serve(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ServeError> for RouterError {
    fn from(e: ServeError) -> Self {
        match e {
            // A replica-level rejection during router shutdown surfaces as
            // the router-level condition the caller can act on.
            ServeError::ShuttingDown => RouterError::ShuttingDown,
            other => RouterError::Serve(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_carry_context() {
        let e = RouterError::UnknownModel { model: "lenet".into() };
        assert!(e.to_string().contains("lenet"));
        let e = RouterError::DuplicateModel { model: "lenet".into() };
        assert!(e.to_string().contains("already"));
        let e = RouterError::Overloaded { model: "m".into(), depth: 9, high_water: 8 };
        assert!(e.to_string().contains('9'));
        assert!(e.to_string().contains('8'));
        assert!(RouterError::ShuttingDown.to_string().contains("shutting down"));
        let e = RouterError::InvalidConfig { reason: "replicas must be positive" };
        assert!(e.to_string().contains("replicas"));
    }

    #[test]
    fn serve_errors_convert() {
        let e: RouterError = ServeError::FeatureLengthMismatch { expected: 784, got: 2 }.into();
        assert!(matches!(e, RouterError::Serve(_)));
        assert!(e.to_string().contains("784"));
        assert!(e.source().is_some());
        let e: RouterError = ServeError::ShuttingDown.into();
        assert_eq!(e, RouterError::ShuttingDown);
    }
}
