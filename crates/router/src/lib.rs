//! # scissor-router
//!
//! The sharded serving tier in front of `scissor_serve`: many named
//! models, each backed by N batching replicas over **one** shared
//! compiled plan, behind an async front door with explicit backpressure.
//!
//! The Group Scissor paper scales one trained network onto many
//! *bounded* crossbars; this crate applies the same partition-and-route
//! idea to serving — one frozen [`CompiledNet`] is sharded onto many
//! bounded replica queues behind a [`Router`], the way large neuromorphic
//! systems route a fixed compiled artifact across independent execution
//! units:
//!
//! * **Model registry.** [`Router::register`] binds a model id to an
//!   `Arc<CompiledNet>` and spawns its replicas ([`scissor_serve::Replica`]
//!   batcher threads, each with a pre-warmed scratch). Replication never
//!   copies weights — the plan is frozen and `Sync`.
//! * **Async admission.** [`Router::submit`] is non-blocking: it validates
//!   the sample, picks a replica and returns a [`Ticket`] immediately.
//!   Callers redeem tickets with [`Ticket::wait`] (blocking) or
//!   [`Ticket::try_take`] (polling) — plain condvar slots, no async
//!   runtime.
//! * **Latency-aware routing.** Replicas are scored by expected completion
//!   time — queue depth × the replica's service-time EWMA ([`RoutePolicy`];
//!   least-loaded tie-break, paused replicas avoided while an active one
//!   exists). The classic depth-only policy remains available as
//!   [`RoutePolicy::LeastLoaded`].
//! * **Autoscaling control plane.** [`control::Supervisor`] periodically
//!   reads every model's stats and emits [`control::ScalingDecision`]s —
//!   runtime replica add/remove ([`Router::scale_up`] /
//!   [`Router::scale_down`], the latter rerouting the torn-down replica's
//!   backlog losing no ticket), admission-bound resize
//!   ([`Router::set_high_water`]) and EWMA-drift rebalance — all under a
//!   pluggable [`Clock`] so the whole loop is deterministic in tests.
//! * **Backpressure.** Each model has a bounded admission queue (the union
//!   of its replica queues). Once its depth passes
//!   [`ModelConfig::queue_high_water`], submissions are **shed** with
//!   [`RouterError::Overloaded`] instead of growing the backlog — graceful
//!   overload, not collapse. (The gate reads queue-depth gauges, so
//!   concurrent racers can overshoot the mark by at most the number of
//!   in-flight submitters.)
//! * **Graceful drain.** [`Router::shutdown`] (and `Drop`) stops admission
//!   and drains every replica: every admitted ticket is delivered before
//!   the batcher threads exit.
//!
//! Routed logits are **bitwise identical** to a direct
//! [`CompiledNet::infer_into`] pass over the same samples, whatever
//! replica or batch composition served them — inherited from the
//! batch-invariant kernels underneath and pinned down by this crate's
//! stress tests.
//!
//! ## Example
//!
//! ```
//! use rand::SeedableRng;
//! use scissor_nn::{NetworkBuilder, Tensor4};
//! use scissor_router::{ModelConfig, Router};
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let net = NetworkBuilder::new((1, 6, 6))
//!     .conv("conv1", 3, 3, 1, 0, &mut rng)
//!     .relu()
//!     .linear("fc", 4, &mut rng)
//!     .build();
//!
//! let router = Router::new();
//! router
//!     .register("lenet-mini", net.compile().unwrap(), ModelConfig::with_replicas(2))
//!     .unwrap();
//!
//! let ticket = router.submit("lenet-mini", &Tensor4::zeros(1, 1, 6, 6)).unwrap();
//! let logits = ticket.wait();
//! assert_eq!(logits.len(), 4);
//!
//! let stats = router.model_stats("lenet-mini").unwrap();
//! assert_eq!(stats.serve.requests, 1);
//! assert_eq!(stats.shed, 0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod control;
mod error;

pub use error::RouterError;
pub use scissor_nn::ServingForm;
pub use scissor_obs::{Registry, Snapshot};
pub use scissor_serve::{
    Clock, MonotonicClock, ServeConfig, ServeStats, SpanKind, SpanRecord, Ticket, TraceId,
    TraceLog, TraceSink, VirtualClock,
};

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use scissor_nn::{CompiledNet, Tensor4};
use scissor_serve::{bucket_upper_ns, PendingRequest, Replica};
use serde::{Serialize, Value};

/// Convenience alias for router results.
pub type Result<T> = std::result::Result<T, RouterError>;

/// Spans retained by the router's trace ring when `GS_OBS_TRACE_CAP` is
/// unset.
const DEFAULT_TRACE_CAP: usize = 4096;

fn env_usize(name: &str) -> Option<usize> {
    std::env::var(name).ok().and_then(|s| s.trim().parse::<usize>().ok())
}

/// `1`/`true` (case-insensitive) opt-in flag — the same convention as
/// `GS_OBS_PROFILE` in the compiler.
fn env_flag(name: &str) -> bool {
    std::env::var(name)
        .map(|v| matches!(v.trim().to_ascii_lowercase().as_str(), "1" | "true"))
        .unwrap_or(false)
}

/// Replica-selection policy for [`Router::submit`].
///
/// Both policies skip paused replicas while at least one active replica
/// exists (a paused replica cannot make progress; steering fresh traffic
/// at it would turn a maintenance hold into queue growth), falling back
/// to all replicas only when every one is paused.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum RoutePolicy {
    /// Shallowest queue wins; ties rotate round-robin from a rotating
    /// origin. The PR-4 policy, blind to heterogeneous replica speed.
    LeastLoaded,
    /// Expected-completion-time scoring: `(depth + 1) ×
    /// max(ewma_service_ns, 1)` — a replica that has proven slow (cache
    /// pressure, noisy neighbor, deliberately slow backend) gets less
    /// traffic in proportion. Replicas with no estimate yet score as if
    /// instant, so cold capacity is seeded immediately. Ties break
    /// least-loaded, then round-robin. The default.
    #[default]
    LatencyAware,
}

/// Per-model serving shape: how many replicas, how much backlog to
/// tolerate, and the batching knobs each replica runs with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelConfig {
    /// Number of batching replicas sharing the model's compiled plan.
    pub replicas: usize,
    /// Admission high-water mark: total pending requests across the
    /// model's replicas at or above which new submissions are shed with
    /// [`RouterError::Overloaded`]. Resizable at runtime via
    /// [`Router::set_high_water`].
    pub queue_high_water: usize,
    /// Batching knobs for each replica (including runtime-added ones).
    /// `queue_cap` is clamped to `queue_high_water` at registration so no
    /// single replica can hold more than the model-wide bound.
    pub replica: ServeConfig,
    /// How submissions pick a replica.
    pub policy: RoutePolicy,
}

impl Default for ModelConfig {
    fn default() -> Self {
        Self {
            replicas: 1,
            queue_high_water: 1024,
            replica: ServeConfig::default(),
            policy: RoutePolicy::default(),
        }
    }
}

impl ModelConfig {
    /// A default config with `replicas` replicas.
    pub fn with_replicas(replicas: usize) -> Self {
        Self { replicas, ..Self::default() }
    }
}

/// One replica's routing-relevant state at selection time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicaSnapshot {
    /// Pending (admitted, not yet drained) requests.
    pub depth: usize,
    /// Per-sample service-time EWMA in ns; `0` = no batch served yet.
    pub ewma_service_ns: u64,
    /// Whether the replica is paused (maintenance hold).
    pub paused: bool,
}

/// Picks the replica a new submission should land on: the core routing
/// decision as a pure function over per-replica snapshots, exposed so the
/// property tests can drive it exhaustively.
///
/// `start` rotates the tie-break origin (the caller increments it per
/// submission); candidates are considered in rotation order from it.
/// Paused replicas are skipped while any active one exists. Returns
/// `None` only for an empty slice.
pub fn select_replica(
    policy: RoutePolicy,
    start: usize,
    replicas: &[ReplicaSnapshot],
) -> Option<usize> {
    let n = replicas.len();
    if n == 0 {
        return None;
    }
    let start = start % n;
    let any_active = replicas.iter().any(|r| !r.paused);
    let mut best: Option<(u128, usize, usize)> = None; // (score, depth, index)
    for k in 0..n {
        let i = (start + k) % n;
        let r = &replicas[i];
        if any_active && r.paused {
            continue;
        }
        let score = match policy {
            RoutePolicy::LeastLoaded => r.depth as u128,
            RoutePolicy::LatencyAware => {
                (r.depth as u128 + 1).saturating_mul(u128::from(r.ewma_service_ns.max(1)))
            }
        };
        // Strict `<` keeps the first candidate in rotation order on ties
        // (after the depth tie-break for the latency-aware policy).
        let better = match best {
            None => true,
            Some((s, d, _)) => score < s || (score == s && r.depth < d),
        };
        if better {
            best = Some((score, r.depth, i));
        }
    }
    best.map(|(_, _, i)| i)
}

/// A snapshot of one model's serving state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelStats {
    /// Replica counters merged across the model's replicas
    /// (`queue_depth` is the model-wide backlog gauge; `serve.shed`
    /// counts rejections at the replicas' own queue caps).
    pub serve: ServeStats,
    /// Submissions shed at the router's admission gate (does not include
    /// the replica-level `serve.shed`; see [`ModelStats::total_shed`]).
    pub shed: u64,
    /// Number of replicas.
    pub replicas: usize,
    /// The admission high-water mark.
    pub queue_high_water: usize,
    /// The numeric serving form of the model's shared plan (every replica
    /// executes the same compiled form).
    pub form: ServingForm,
}

impl ModelStats {
    /// Every submission this model rejected as overload — the router's
    /// admission-gate sheds plus the replicas' queue-cap sheds (each
    /// rejection is counted in exactly one of the two).
    pub fn total_shed(&self) -> u64 {
        self.shed + self.serve.shed
    }
}

struct ModelEntry {
    plan: Arc<CompiledNet>,
    replicas: Vec<Replica>,
    /// Rotating tie-break origin for replica selection.
    rr: AtomicUsize,
    /// Admission high-water mark; atomic so the control plane can resize
    /// it under the registry's *read* lock without stalling submissions.
    high_water: AtomicUsize,
    shed: AtomicU64,
    /// The batching knobs runtime-added replicas are spawned with
    /// (`queue_cap` already clamped to the registration-time high water).
    replica_cfg: ServeConfig,
    policy: RoutePolicy,
    /// Model-level pause state, inherited by runtime-added replicas so a
    /// scale-up during a maintenance hold (or a deterministic test) does
    /// not silently start draining.
    paused: AtomicBool,
    /// Final counters of scaled-down replicas, accumulated so the
    /// model-wide cumulative stats (and the supervisor's per-tick deltas
    /// computed from them) never regress when capacity leaves the pool.
    retired: Mutex<ServeStats>,
}

impl ModelEntry {
    /// Snapshots every replica and picks the submission target via
    /// [`select_replica`]; returns `(index, total_depth)`.
    fn route(&self) -> (usize, usize) {
        let snaps: Vec<ReplicaSnapshot> = self
            .replicas
            .iter()
            .map(|r| ReplicaSnapshot {
                depth: r.queue_depth(),
                ewma_service_ns: r.ewma_service_ns(),
                paused: r.is_paused(),
            })
            .collect();
        let total = snaps.iter().map(|s| s.depth).sum();
        // ordering: Relaxed — round-robin origin; any interleaving of the
        // RMW across submitters still spreads starts, and no other data
        // rides on it.
        let start = self.rr.fetch_add(1, Ordering::Relaxed);
        let best = select_replica(self.policy, start, &snaps)
            .expect("a registered model has at least one replica");
        (best, total)
    }

    fn high_water(&self) -> usize {
        // ordering: Relaxed — admission threshold read as a plain value;
        // a submitter racing a threshold change may use either bound,
        // both of which were valid moments apart.
        self.high_water.load(Ordering::Relaxed)
    }

    fn stats(&self) -> ModelStats {
        let mut serve = *self.retired.lock().expect("retired stats poisoned");
        for r in &self.replicas {
            serve.merge(&r.stats());
        }
        ModelStats {
            serve,
            // ordering: Relaxed — stat counter snapshot; may lag
            // in-flight sheds.
            shed: self.shed.load(Ordering::Relaxed),
            replicas: self.replicas.len(),
            queue_high_water: self.high_water(),
            form: self.plan.serving_form(),
        }
    }
}

/// The multi-model, multi-replica serving router.
///
/// Registration and submission are thread-safe through `&self`; drop (or
/// [`Router::shutdown`]) stops admission and drains every replica.
pub struct Router {
    models: RwLock<HashMap<String, ModelEntry>>,
    shutting_down: AtomicBool,
    /// One clock for the whole router: every replica timestamps with it,
    /// so latency/EWMA numbers are comparable across replicas — and a
    /// [`VirtualClock`] here puts the entire serving tier on test time.
    clock: Arc<dyn Clock>,
    /// The router-wide metrics registry. Producers across the stack
    /// (admission gate, supervisor, tile calibration) register named
    /// counters/gauges here; [`Router::observability_snapshot`] folds a
    /// reading of it into the one-document export.
    registry: Arc<Registry>,
    /// The router-wide span sink. Every replica the router spawns carries
    /// a [`TraceSink`] into this log, so one request's spans line up
    /// across reroutes and scale events. Disabled (one relaxed load per
    /// submission) unless `GS_OBS_TRACE` or [`Router::enable_tracing`]
    /// turns it on.
    trace: Arc<TraceLog>,
    /// Monotonic replica-id allocator: ids are unique across models and
    /// scale-up/scale-down churn for the router's lifetime, so a span's
    /// `replica` field is never ambiguous between a torn-down replica and
    /// a later-spawned one.
    next_replica_id: AtomicU64,
}

impl Default for Router {
    fn default() -> Self {
        Self::new()
    }
}

impl Router {
    /// An empty router timestamping with a fresh [`MonotonicClock`];
    /// register models with [`Router::register`].
    pub fn new() -> Self {
        Self::with_clock(MonotonicClock::shared())
    }

    /// An empty router with an explicit time source (a [`VirtualClock`]
    /// makes every latency/EWMA observation deterministic in tests).
    ///
    /// Tracing starts disabled unless `GS_OBS_TRACE` is `1`/`true`; the
    /// span ring retains `GS_OBS_TRACE_CAP` spans (default 4096).
    pub fn with_clock(clock: Arc<dyn Clock>) -> Self {
        let trace =
            Arc::new(TraceLog::new(env_usize("GS_OBS_TRACE_CAP").unwrap_or(DEFAULT_TRACE_CAP)));
        if env_flag("GS_OBS_TRACE") {
            trace.enable();
        }
        Self {
            models: RwLock::new(HashMap::new()),
            shutting_down: AtomicBool::new(false),
            clock,
            registry: Arc::new(Registry::new()),
            trace,
            next_replica_id: AtomicU64::new(0),
        }
    }

    /// The router's time source (shared with every replica it spawns).
    pub fn clock(&self) -> Arc<dyn Clock> {
        Arc::clone(&self.clock)
    }

    /// The router-wide metrics registry — the sink every producer in the
    /// serving stack (admission gate, supervisor, tile calibration)
    /// publishes named counters and gauges into. Shared so callers can
    /// attach their own metrics or take [`Registry::snapshot`]s for
    /// interval deltas.
    pub fn registry(&self) -> Arc<Registry> {
        Arc::clone(&self.registry)
    }

    /// The router-wide trace log every replica's spans land in.
    pub fn trace_log(&self) -> Arc<TraceLog> {
        Arc::clone(&self.trace)
    }

    /// Starts recording request spans (Queued → Batched → Executed) into
    /// [`Router::trace_log`]. Equivalent to launching with `GS_OBS_TRACE=1`.
    pub fn enable_tracing(&self) {
        self.trace.enable();
    }

    /// Stops recording spans; already-retained spans stay readable.
    pub fn disable_tracing(&self) {
        self.trace.disable();
    }

    /// Whether request tracing is currently recording.
    pub fn tracing_enabled(&self) -> bool {
        self.trace.is_enabled()
    }

    /// Spawns one traced replica over `plan`, stamped with the next
    /// router-unique replica id. The single spawn path for registration
    /// and scale-up, so every replica is guaranteed a [`TraceSink`].
    fn spawn_replica(&self, plan: Arc<CompiledNet>, cfg: ServeConfig) -> Replica {
        // ordering: Relaxed — id uniqueness comes from the RMW itself;
        // the replica is published via the registry's RwLock, not here.
        let id = self.next_replica_id.fetch_add(1, Ordering::Relaxed);
        Replica::start_traced(plan, cfg, self.clock(), TraceSink::new(self.trace_log(), id))
    }

    /// Registers `plan` under `model` and spawns its replicas.
    ///
    /// Takes ownership of the plan; use [`Router::register_shared`] to
    /// hand in an `Arc` you also keep (e.g. for reference inference in
    /// tests).
    ///
    /// # Errors
    ///
    /// [`RouterError::DuplicateModel`] if the id is taken,
    /// [`RouterError::InvalidConfig`] for a zero replica count or
    /// high-water mark, [`RouterError::ShuttingDown`] after shutdown
    /// began.
    pub fn register(&self, model: &str, plan: CompiledNet, cfg: ModelConfig) -> Result<()> {
        self.register_shared(model, Arc::new(plan), cfg)
    }

    /// Registers a shared compiled plan under `model` (see
    /// [`Router::register`]).
    ///
    /// # Errors
    ///
    /// As [`Router::register`].
    pub fn register_shared(
        &self,
        model: &str,
        plan: Arc<CompiledNet>,
        cfg: ModelConfig,
    ) -> Result<()> {
        if self.shutting_down.load(Ordering::Acquire) {
            return Err(RouterError::ShuttingDown);
        }
        if cfg.replicas == 0 {
            return Err(RouterError::InvalidConfig { reason: "replicas must be positive" });
        }
        if cfg.queue_high_water == 0 {
            return Err(RouterError::InvalidConfig { reason: "queue_high_water must be positive" });
        }
        let mut replica_cfg = cfg.replica;
        replica_cfg.queue_cap = replica_cfg.queue_cap.min(cfg.queue_high_water);
        let mut models = self.models.write().expect("router registry poisoned");
        if models.contains_key(model) {
            return Err(RouterError::DuplicateModel { model: model.to_string() });
        }
        let replicas =
            (0..cfg.replicas).map(|_| self.spawn_replica(Arc::clone(&plan), replica_cfg)).collect();
        models.insert(
            model.to_string(),
            ModelEntry {
                plan,
                replicas,
                rr: AtomicUsize::new(0),
                high_water: AtomicUsize::new(cfg.queue_high_water),
                shed: AtomicU64::new(0),
                replica_cfg,
                policy: cfg.policy,
                paused: AtomicBool::new(false),
                retired: Mutex::new(ServeStats::zero()),
            },
        );
        Ok(())
    }

    /// Registered model ids, sorted.
    pub fn models(&self) -> Vec<String> {
        let models = self.models.read().expect("router registry poisoned");
        let mut names: Vec<String> = models.keys().cloned().collect();
        names.sort();
        names
    }

    /// The input shape `(c, h, w)` the model expects, if registered.
    pub fn input_shape(&self, model: &str) -> Option<(usize, usize, usize)> {
        let models = self.models.read().expect("router registry poisoned");
        models.get(model).map(|e| e.plan.input_shape())
    }

    /// Submits one batch-1 sample to `model` without blocking and returns
    /// its [`Ticket`].
    ///
    /// # Errors
    ///
    /// [`RouterError::UnknownModel`] for an unregistered id;
    /// [`RouterError::Overloaded`] once the model's pending requests reach
    /// its high-water mark; [`RouterError::ShuttingDown`] after shutdown
    /// began; [`RouterError::Serve`] for shape/feature mismatches.
    pub fn submit(&self, model: &str, sample: &Tensor4) -> Result<Ticket> {
        self.with_route(model, |replica| replica.submit(sample).map_err(RouterError::from))
    }

    /// Submits one sample as a raw `c·h·w` feature slice (see
    /// [`Router::submit`]).
    ///
    /// # Errors
    ///
    /// As [`Router::submit`].
    pub fn submit_features(&self, model: &str, features: &[f32]) -> Result<Ticket> {
        self.with_route(model, |replica| {
            replica.submit_features(features).map_err(RouterError::from)
        })
    }

    /// Resolves `model`, applies the admission gate, picks the
    /// least-loaded replica and hands it to `f`.
    fn with_route<T>(&self, model: &str, f: impl FnOnce(&Replica) -> Result<T>) -> Result<T> {
        if self.shutting_down.load(Ordering::Acquire) {
            return Err(RouterError::ShuttingDown);
        }
        let models = self.models.read().expect("router registry poisoned");
        let entry = models
            .get(model)
            .ok_or_else(|| RouterError::UnknownModel { model: model.to_string() })?;
        let (best, depth) = entry.route();
        let high_water = entry.high_water();
        if depth >= high_water {
            // ordering: Relaxed — stat counter; no reader pairs it with
            // other memory.
            entry.shed.fetch_add(1, Ordering::Relaxed);
            return Err(RouterError::Overloaded { model: model.to_string(), depth, high_water });
        }
        match f(&entry.replicas[best]) {
            // Racing submitters can slip past the gauge-based gate and hit
            // the chosen replica's own cap; that is still an overload shed
            // from the caller's point of view. The replica already counted
            // it in its `ServeStats::shed` (so the gate counter is NOT
            // bumped — each rejection lands in exactly one counter), and
            // the error reports the model-wide backlog to match the
            // model-wide high-water mark.
            Err(RouterError::Serve(scissor_serve::ServeError::Overloaded { .. })) => {
                let depth = entry.replicas.iter().map(Replica::queue_depth).sum();
                Err(RouterError::Overloaded {
                    model: model.to_string(),
                    depth,
                    high_water: entry.high_water(),
                })
            }
            other => other,
        }
    }

    /// Current pending-request backlog across `model`'s replicas.
    pub fn queue_depth(&self, model: &str) -> Option<usize> {
        let models = self.models.read().expect("router registry poisoned");
        models.get(model).map(|e| e.replicas.iter().map(Replica::queue_depth).sum())
    }

    /// Per-replica pending-request backlog for `model` — the load picture
    /// the least-loaded selector routes on (and the signal an autoscaler
    /// would watch).
    pub fn replica_queue_depths(&self, model: &str) -> Option<Vec<usize>> {
        let models = self.models.read().expect("router registry poisoned");
        models.get(model).map(|e| e.replicas.iter().map(Replica::queue_depth).collect())
    }

    /// Counter snapshot for one model.
    pub fn model_stats(&self, model: &str) -> Option<ModelStats> {
        let models = self.models.read().expect("router registry poisoned");
        models.get(model).map(ModelEntry::stats)
    }

    /// Counter snapshots for every model, sorted by id.
    pub fn stats(&self) -> Vec<(String, ModelStats)> {
        let models = self.models.read().expect("router registry poisoned");
        let mut all: Vec<(String, ModelStats)> =
            models.iter().map(|(n, e)| (n.clone(), e.stats())).collect();
        all.sort_by(|a, b| a.0.cmp(&b.0));
        all
    }

    /// Pauses `model`'s replicas (admission continues until the bound;
    /// batches stop draining). Maintenance hook, also what makes overload
    /// tests deterministic. Replicas added by a scale-up while the model
    /// is paused start paused too.
    ///
    /// # Errors
    ///
    /// [`RouterError::UnknownModel`] for an unregistered id.
    pub fn pause(&self, model: &str) -> Result<()> {
        self.for_model(model, true, Replica::pause)
    }

    /// Resumes a paused model.
    ///
    /// # Errors
    ///
    /// [`RouterError::UnknownModel`] for an unregistered id.
    pub fn resume(&self, model: &str) -> Result<()> {
        self.for_model(model, false, Replica::resume)
    }

    fn for_model(&self, model: &str, paused: bool, f: impl Fn(&Replica)) -> Result<()> {
        let models = self.models.read().expect("router registry poisoned");
        let entry = models
            .get(model)
            .ok_or_else(|| RouterError::UnknownModel { model: model.to_string() })?;
        // ordering: Relaxed — the flag only preserves pause state for
        // replicas spawned later (read under the registry write lock in
        // `scale_up`, which orders it); replicas present now are
        // paused/resumed directly via `f` below.
        entry.paused.store(paused, Ordering::Relaxed);
        for r in &entry.replicas {
            f(r);
        }
        Ok(())
    }

    /// Adds one replica to `model` at runtime (the scale-up actuator):
    /// spawns fresh batchers over the model's *shared* plan — no weight
    /// copy — whose first action is to pre-warm their scratch
    /// ([`scissor_nn::CompiledNet::warm_scratch`]) before draining any
    /// request. The new replica inherits the model's pause state and
    /// becomes routable as soon as this returns. Returns the new replica
    /// count.
    ///
    /// # Errors
    ///
    /// [`RouterError::UnknownModel`] for an unregistered id;
    /// [`RouterError::ShuttingDown`] after shutdown began.
    pub fn scale_up(&self, model: &str) -> Result<usize> {
        if self.shutting_down.load(Ordering::Acquire) {
            return Err(RouterError::ShuttingDown);
        }
        let mut models = self.models.write().expect("router registry poisoned");
        let entry = models
            .get_mut(model)
            .ok_or_else(|| RouterError::UnknownModel { model: model.to_string() })?;
        let replica = self.spawn_replica(Arc::clone(&entry.plan), entry.replica_cfg);
        // ordering: Relaxed — read under the registry write lock, which
        // already orders it against `for_model`'s store (the lock pair is
        // the happens-before edge; the atomic just avoids &mut plumbing).
        if entry.paused.load(Ordering::Relaxed) {
            replica.pause();
        }
        entry.replicas.push(replica);
        Ok(entry.replicas.len())
    }

    /// Removes one replica from `model` at runtime (the scale-down
    /// actuator), **losing no admitted ticket**: the victim — the replica
    /// with the highest service-time EWMA, i.e. the least useful capacity
    /// (ties: the newest) — is dismantled, and every request still
    /// pending in its queue is rerouted into the surviving replicas
    /// (least-loaded first, admission-order preserved, queue caps
    /// bypassed since each was already admitted once). A batch the victim
    /// already had in flight completes and delivers normally. Returns the
    /// new replica count.
    ///
    /// Holding the registry write lock for the whole
    /// dismantle-and-reroute keeps it atomic with respect to submissions
    /// (which hold the read lock): no submission can observe the victim
    /// after its backlog started moving.
    ///
    /// # Errors
    ///
    /// [`RouterError::UnknownModel`] for an unregistered id;
    /// [`RouterError::InvalidConfig`] when the model has only one replica
    /// (scale to zero is shutdown, not scale-down);
    /// [`RouterError::ShuttingDown`] after shutdown began.
    pub fn scale_down(&self, model: &str) -> Result<usize> {
        if self.shutting_down.load(Ordering::Acquire) {
            return Err(RouterError::ShuttingDown);
        }
        let mut models = self.models.write().expect("router registry poisoned");
        let entry = models
            .get_mut(model)
            .ok_or_else(|| RouterError::UnknownModel { model: model.to_string() })?;
        if entry.replicas.len() <= 1 {
            return Err(RouterError::InvalidConfig { reason: "cannot scale below one replica" });
        }
        let victim = entry
            .replicas
            .iter()
            .enumerate()
            .max_by_key(|(i, r)| (r.ewma_service_ns(), *i))
            .map(|(i, _)| i)
            .expect("len checked above");
        let torn = entry.replicas.remove(victim).dismantle();
        entry.retired.lock().expect("retired stats poisoned").merge(&torn.stats);
        for req in torn.pending {
            reroute(&entry.replicas, req);
        }
        Ok(entry.replicas.len())
    }

    /// Resizes `model`'s admission high-water mark (the
    /// `ResizeHighWater` actuator). The effective value is clamped to at
    /// least the current in-flight depth — shrinking the bound must
    /// never retroactively declare already-admitted requests shed — and
    /// to at least 1. Returns the effective value.
    ///
    /// # Errors
    ///
    /// [`RouterError::UnknownModel`] for an unregistered id.
    pub fn set_high_water(&self, model: &str, requested: usize) -> Result<usize> {
        let models = self.models.read().expect("router registry poisoned");
        let entry = models
            .get(model)
            .ok_or_else(|| RouterError::UnknownModel { model: model.to_string() })?;
        let depth: usize = entry.replicas.iter().map(Replica::queue_depth).sum();
        let effective = requested.max(depth).max(1);
        // ordering: Relaxed — see `high_water`: a plain threshold value;
        // racing submitters may gate on either bound.
        entry.high_water.store(effective, Ordering::Relaxed);
        Ok(effective)
    }

    /// Resets `model`'s routing state (the `Rebalance` actuator): the
    /// round-robin origin returns to zero and every replica's
    /// service-time EWMA is cleared so the estimators re-learn current
    /// conditions instead of steering on stale drift.
    ///
    /// # Errors
    ///
    /// [`RouterError::UnknownModel`] for an unregistered id.
    pub fn rebalance(&self, model: &str) -> Result<()> {
        let models = self.models.read().expect("router registry poisoned");
        let entry = models
            .get(model)
            .ok_or_else(|| RouterError::UnknownModel { model: model.to_string() })?;
        // ordering: Relaxed — resets the round-robin origin; see `route`,
        // the counter is a spread heuristic with no attached data.
        entry.rr.store(0, Ordering::Relaxed);
        for r in &entry.replicas {
            r.reset_ewma();
        }
        Ok(())
    }

    /// Re-runs measured tile calibration on `model`'s shared plan (see
    /// [`scissor_nn::CompiledNet::calibrate_tile`]): times 2–3 candidate
    /// sub-batch sizes on the real plan and installs the fastest as the
    /// runtime tile override. Used by the supervisor at warm-up and when
    /// batch-latency stats drift.
    ///
    /// # Errors
    ///
    /// [`RouterError::UnknownModel`] for an unregistered id.
    pub fn calibrate_tiles(
        &self,
        model: &str,
        rounds: usize,
    ) -> Result<scissor_nn::TileCalibration> {
        let (plan, batch) = {
            let models = self.models.read().expect("router registry poisoned");
            let entry = models
                .get(model)
                .ok_or_else(|| RouterError::UnknownModel { model: model.to_string() })?;
            (Arc::clone(&entry.plan), entry.replica_cfg.max_batch)
        };
        // Calibration runs real timed forwards; do it outside the
        // registry lock so it never stalls submissions.
        let cal = plan.calibrate_tile(batch, rounds);
        self.registry.counter("tile.calibrations").inc();
        self.registry.gauge(&format!("tile.{model}.chosen")).set(cal.chosen as u64);
        if let Some(winner) = cal.timings.iter().find(|t| t.tile == cal.chosen) {
            self.registry.gauge(&format!("tile.{model}.best_ns")).set(winner.best_ns);
        }
        Ok(cal)
    }

    /// Number of replicas currently serving `model`, if registered.
    pub fn replica_count(&self, model: &str) -> Option<usize> {
        let models = self.models.read().expect("router registry poisoned");
        models.get(model).map(|e| e.replicas.len())
    }

    /// Per-replica service-time EWMAs (ns; `0` = no batch yet) for
    /// `model` — the latency-aware routing signal, in replica order.
    pub fn replica_ewma_service_ns(&self, model: &str) -> Option<Vec<u64>> {
        let models = self.models.read().expect("router registry poisoned");
        models.get(model).map(|e| e.replicas.iter().map(Replica::ewma_service_ns).collect())
    }

    /// One JSON document covering the whole serving stack:
    ///
    /// * `models.<name>.serve` — merged replica counters with the full
    ///   latency picture (mean/max, p50/p95/p99/p99.9 and the sparse log₂
    ///   histogram with true bucket bounds; the open-ended top bucket
    ///   reports `upper_ns: null`);
    /// * `models.<name>.router` — admission-gate sheds, per-replica queue
    ///   depths and service-time EWMAs (the routing signals);
    /// * `models.<name>.profile` — per-step time/working-set aggregates
    ///   when the plan's profiler is built (`GS_OBS_PROFILE=1` or
    ///   [`scissor_nn::CompiledNet::enable_profiling`]), else `null`;
    /// * `pool` — the work-stealing scheduler's cumulative counters;
    /// * `trace` — the span ring's health (enabled/minted/recorded/dropped);
    /// * `metrics` — a reading of every metric in [`Router::registry`],
    ///   which includes the supervisor's `ctrl.decisions.*` counters and
    ///   the `tile.*` calibration gauges.
    ///
    /// Before the `metrics` reading is taken, the registry's `serve.*`,
    /// `pool.*` and `trace.*` gauges are synced to the same values the
    /// document reports, so interval deltas via [`Snapshot::delta_since`]
    /// line up with the export.
    pub fn observability_snapshot(&self) -> Value {
        // One pass under the read lock to collect raw per-model data;
        // everything else (gauge sync, JSON assembly) runs lock-free.
        let mut readings: Vec<ModelReading> = {
            let models = self.models.read().expect("router registry poisoned");
            models
                .iter()
                .map(|(name, e)| ModelReading {
                    name: name.clone(),
                    stats: e.stats(),
                    depths: e.replicas.iter().map(Replica::queue_depth).collect(),
                    ewma: e.replicas.iter().map(Replica::ewma_service_ns).collect(),
                    profile: e.plan.profiler().map(|p| p.snapshot().to_value()),
                })
                .collect()
        };
        readings.sort_by(|a, b| a.name.cmp(&b.name));

        let pool = rayon::pool_stats();
        for r in &readings {
            let name = &r.name;
            let stats = &r.stats;
            let gauge =
                |key: &str, v: u64| self.registry.gauge(&format!("serve.{name}.{key}")).set(v);
            gauge("requests", stats.serve.requests);
            gauge("shed_total", stats.total_shed());
            gauge("queue_depth", stats.serve.queue_depth);
            gauge("replicas", stats.replicas as u64);
            gauge("p50_ns", stats.serve.p50_latency().as_nanos() as u64);
            gauge("p99_ns", stats.serve.p99_latency().as_nanos() as u64);
            gauge("p999_ns", stats.serve.p999_latency().as_nanos() as u64);
            gauge("ewma_ns", stats.serve.ewma_service_ns);
        }
        let pool_gauge = |key: &str, v: u64| self.registry.gauge(&format!("pool.{key}")).set(v);
        pool_gauge("local_pushes", pool.local_pushes);
        pool_gauge("injected", pool.injected);
        pool_gauge("local_pops", pool.local_pops);
        pool_gauge("steals", pool.steals);
        pool_gauge("injector_pops", pool.injector_pops);
        let trace_gauge = |key: &str, v: u64| self.registry.gauge(&format!("trace.{key}")).set(v);
        trace_gauge("minted", self.trace.minted());
        trace_gauge("recorded", self.trace.recorded());
        trace_gauge("dropped", self.trace.dropped());

        let models_value = Value::Map(
            readings
                .into_iter()
                .map(|r| (r.name, model_value(&r.stats, &r.depths, &r.ewma, r.profile)))
                .collect(),
        );
        Value::Map(vec![
            ("models".to_string(), models_value),
            (
                "pool".to_string(),
                Value::Map(vec![
                    ("local_pushes".to_string(), Value::U64(pool.local_pushes)),
                    ("injected".to_string(), Value::U64(pool.injected)),
                    ("local_pops".to_string(), Value::U64(pool.local_pops)),
                    ("steals".to_string(), Value::U64(pool.steals)),
                    ("injector_pops".to_string(), Value::U64(pool.injector_pops)),
                ]),
            ),
            (
                "trace".to_string(),
                Value::Map(vec![
                    ("enabled".to_string(), Value::Bool(self.trace.is_enabled())),
                    ("capacity".to_string(), Value::U64(self.trace.capacity() as u64)),
                    ("minted".to_string(), Value::U64(self.trace.minted())),
                    ("recorded".to_string(), Value::U64(self.trace.recorded())),
                    ("dropped".to_string(), Value::U64(self.trace.dropped())),
                ]),
            ),
            ("metrics".to_string(), self.registry.snapshot().to_value()),
        ])
    }

    /// [`Router::observability_snapshot`] rendered as a JSON string.
    pub fn observability_json(&self) -> String {
        serde_json::to_string(&self.observability_snapshot())
            .expect("encoding an in-memory Value cannot fail")
    }

    /// Stops admission, then drains and joins every replica: all admitted
    /// tickets are delivered before this returns. Takes `&self` so a
    /// router shared as `Arc<Router>` across caller threads can still be
    /// drained explicitly (new submissions block on the registry lock
    /// during the drain and are then rejected with
    /// [`RouterError::ShuttingDown`]). Idempotent; also invoked by `Drop`.
    pub fn shutdown(&self) {
        self.shutting_down.store(true, Ordering::Release);
        let mut models = self.models.write().expect("router registry poisoned");
        for entry in models.values_mut() {
            for replica in &mut entry.replicas {
                replica.shutdown();
            }
        }
    }
}

/// Raw per-model data collected under the registry read lock, rendered
/// lock-free afterwards by [`model_value`].
struct ModelReading {
    name: String,
    stats: ModelStats,
    depths: Vec<usize>,
    ewma: Vec<u64>,
    profile: Option<Value>,
}

/// Builds one model's section of [`Router::observability_snapshot`].
fn model_value(
    stats: &ModelStats,
    depths: &[usize],
    ewma: &[u64],
    profile: Option<Value>,
) -> Value {
    let s = &stats.serve;
    // Sparse histogram: only populated buckets, each with its true
    // `[lower, upper)` nanosecond bounds; the open-ended top bucket
    // reports `upper_ns: null` instead of a fabricated bound.
    let hist: Vec<Value> = s
        .latency_hist
        .iter()
        .enumerate()
        .filter(|&(_, &count)| count > 0)
        .map(|(i, &count)| {
            let lower = if i == 0 { 0 } else { 1u64 << (i - 1) };
            Value::Map(vec![
                ("lower_ns".to_string(), Value::U64(lower)),
                ("upper_ns".to_string(), bucket_upper_ns(i).map_or(Value::Null, Value::U64)),
                ("count".to_string(), Value::U64(count)),
            ])
        })
        .collect();
    Value::Map(vec![
        ("form".to_string(), Value::Str(stats.form.to_string())),
        ("replicas".to_string(), Value::U64(stats.replicas as u64)),
        ("queue_high_water".to_string(), Value::U64(stats.queue_high_water as u64)),
        (
            "router".to_string(),
            Value::Map(vec![
                ("shed".to_string(), Value::U64(stats.shed)),
                (
                    "queue_depths".to_string(),
                    Value::Seq(depths.iter().map(|&d| Value::U64(d as u64)).collect()),
                ),
                (
                    "ewma_service_ns".to_string(),
                    Value::Seq(ewma.iter().map(|&e| Value::U64(e)).collect()),
                ),
            ]),
        ),
        (
            "serve".to_string(),
            Value::Map(vec![
                ("requests".to_string(), Value::U64(s.requests)),
                ("batches".to_string(), Value::U64(s.batches)),
                ("samples".to_string(), Value::U64(s.samples)),
                ("full_batches".to_string(), Value::U64(s.full_batches)),
                ("shed".to_string(), Value::U64(s.shed)),
                ("queue_depth".to_string(), Value::U64(s.queue_depth)),
                ("mean_batch_size".to_string(), Value::F64(s.mean_batch_size())),
                (
                    "latency".to_string(),
                    Value::Map(vec![
                        ("mean_ns".to_string(), Value::U64(s.mean_latency().as_nanos() as u64)),
                        ("max_ns".to_string(), Value::U64(s.max_latency.as_nanos() as u64)),
                        ("p50_ns".to_string(), Value::U64(s.p50_latency().as_nanos() as u64)),
                        ("p95_ns".to_string(), Value::U64(s.p95_latency().as_nanos() as u64)),
                        ("p99_ns".to_string(), Value::U64(s.p99_latency().as_nanos() as u64)),
                        ("p999_ns".to_string(), Value::U64(s.p999_latency().as_nanos() as u64)),
                    ]),
                ),
                ("latency_hist".to_string(), Value::Seq(hist)),
                ("ewma_service_ns".to_string(), Value::U64(s.ewma_service_ns)),
            ]),
        ),
        ("profile".to_string(), profile.unwrap_or(Value::Null)),
    ])
}

/// Hands one already-admitted request to the least-loaded surviving
/// replica. Queue caps are bypassed ([`Replica::inject`]) — the request
/// was admitted once; a teardown must not turn it into a shed. A replica
/// that refuses (shut down between selection and injection) just means we
/// try the next-least-loaded one; `scale_down` never tears down the last
/// replica, so at least one target always accepts.
fn reroute(survivors: &[Replica], req: PendingRequest) {
    let mut order: Vec<usize> = (0..survivors.len()).collect();
    order.sort_by_key(|&i| survivors[i].queue_depth());
    let mut req = req;
    for i in order {
        match survivors[i].inject(req) {
            Ok(()) => return,
            Err(back) => req = back,
        }
    }
    unreachable!("scale_down keeps at least one live replica to reroute into");
}

impl Drop for Router {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for Router {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let models = self.models.read().expect("router registry poisoned");
        let mut entries: Vec<String> = models
            .iter()
            .map(|(n, e)| {
                format!(
                    "{n} ×{} (≤{}, {})",
                    e.replicas.len(),
                    e.high_water(),
                    e.plan.serving_form()
                )
            })
            .collect();
        entries.sort();
        write!(f, "Router([{}])", entries.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use scissor_nn::NetworkBuilder;
    use scissor_serve::ServeError;

    fn tiny_plan(seed: u64, classes: usize) -> CompiledNet {
        let mut rng = StdRng::seed_from_u64(seed);
        NetworkBuilder::new((1, 4, 4))
            .conv("conv1", 2, 3, 1, 0, &mut rng)
            .relu()
            .linear("fc", classes, &mut rng)
            .build()
            .compile()
            .expect("compile")
    }

    fn sample(seed: usize) -> Tensor4 {
        Tensor4::from_vec(
            1,
            1,
            4,
            4,
            (0..16).map(|i| ((i * 7 + seed * 13) % 23) as f32 * 0.1 - 1.0).collect(),
        )
    }

    #[test]
    fn registry_rejects_duplicates_and_bad_configs() {
        let router = Router::new();
        router.register("m", tiny_plan(1, 3), ModelConfig::default()).unwrap();
        assert!(matches!(
            router.register("m", tiny_plan(1, 3), ModelConfig::default()),
            Err(RouterError::DuplicateModel { .. })
        ));
        assert!(matches!(
            router.register("z", tiny_plan(1, 3), ModelConfig::with_replicas(0)),
            Err(RouterError::InvalidConfig { .. })
        ));
        let bad = ModelConfig { queue_high_water: 0, ..ModelConfig::default() };
        assert!(matches!(
            router.register("z", tiny_plan(1, 3), bad),
            Err(RouterError::InvalidConfig { .. })
        ));
        assert_eq!(router.models(), vec!["m".to_string()]);
        assert_eq!(router.input_shape("m"), Some((1, 4, 4)));
        assert_eq!(router.input_shape("ghost"), None);
    }

    #[test]
    fn unknown_model_and_bad_shapes_are_rejected() {
        let router = Router::new();
        router.register("m", tiny_plan(1, 3), ModelConfig::default()).unwrap();
        assert!(matches!(
            router.submit("ghost", &sample(0)),
            Err(RouterError::UnknownModel { .. })
        ));
        let bad = Tensor4::zeros(1, 1, 5, 5);
        assert!(matches!(
            router.submit("m", &bad),
            Err(RouterError::Serve(ServeError::ShapeMismatch { .. }))
        ));
        assert!(matches!(
            router.submit_features("m", &[0.0; 2]),
            Err(RouterError::Serve(ServeError::FeatureLengthMismatch { .. }))
        ));
    }

    #[test]
    fn two_models_serve_their_own_plans() {
        let plan_a = Arc::new(tiny_plan(1, 3));
        let plan_b = Arc::new(tiny_plan(2, 5));
        let router = Router::new();
        router.register_shared("a", Arc::clone(&plan_a), ModelConfig::with_replicas(2)).unwrap();
        router.register_shared("b", Arc::clone(&plan_b), ModelConfig::with_replicas(2)).unwrap();
        for s in 0..6 {
            let got_a = router.submit("a", &sample(s)).unwrap().wait();
            let got_b = router.submit("b", &sample(s)).unwrap().wait();
            assert_eq!(got_a.as_slice(), plan_a.infer(&sample(s)).as_slice());
            assert_eq!(got_b.as_slice(), plan_b.infer(&sample(s)).as_slice());
        }
        let stats = router.stats();
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].1.serve.requests + stats[1].1.serve.requests, 12);
        assert_eq!(stats[0].1.replicas, 2);
    }

    #[test]
    fn least_loaded_routing_spreads_submissions_evenly() {
        let router = Router::new();
        router.register("m", tiny_plan(3, 2), ModelConfig::with_replicas(3)).unwrap();
        router.pause("m").unwrap();
        assert_eq!(router.replica_queue_depths("m"), Some(vec![0, 0, 0]));
        assert_eq!(router.replica_queue_depths("ghost"), None);
        // Paused replicas make depths deterministic: sequential
        // submissions must spread 6 → [2, 2, 2] (least-loaded picks an
        // empty queue while one exists; the rotating tie-break start keeps
        // ties from piling onto replica 0), never [6, 0, 0].
        for s in 0..6 {
            router.submit("m", &sample(s)).unwrap();
            let depths = router.replica_queue_depths("m").unwrap();
            let (min, max) = (depths.iter().min().unwrap(), depths.iter().max().unwrap());
            assert!(max - min <= 1, "submission {s} unbalanced the queues: {depths:?}");
        }
        assert_eq!(router.replica_queue_depths("m"), Some(vec![2, 2, 2]));
        let stats = router.model_stats("m").unwrap();
        assert_eq!(stats.serve.queue_depth, 6);
        // Resume: everything drains.
        router.resume("m").unwrap();
        let mut spins = 0;
        while router.queue_depth("m").unwrap() > 0 {
            std::thread::yield_now();
            spins += 1;
            assert!(spins < 10_000_000, "queue must drain");
        }
        drop(router);
    }

    #[test]
    fn overload_sheds_at_the_high_water_mark() {
        let router = Router::new();
        let cfg = ModelConfig { replicas: 2, queue_high_water: 4, ..ModelConfig::default() };
        let reference = tiny_plan(4, 3);
        router.register("m", tiny_plan(4, 3), cfg).unwrap();
        router.pause("m").unwrap();
        let tickets: Vec<Ticket> =
            (0..4).map(|s| router.submit("m", &sample(s)).expect("admitted")).collect();
        match router.submit("m", &sample(9)) {
            Err(RouterError::Overloaded { depth: 4, high_water: 4, model }) => {
                assert_eq!(model, "m");
            }
            other => panic!("expected Overloaded, got {other:?}"),
        }
        let stats = router.model_stats("m").unwrap();
        assert_eq!(stats.shed, 1);
        assert_eq!(stats.serve.queue_depth, 4);
        router.resume("m").unwrap();
        for (s, t) in tickets.into_iter().enumerate() {
            assert_eq!(t.wait().as_slice(), reference.infer(&sample(s)).as_slice());
        }
        // Backlog cleared: admission works again.
        let t = router.submit("m", &sample(7)).unwrap();
        assert_eq!(t.wait().as_slice(), reference.infer(&sample(7)).as_slice());
        assert_eq!(router.model_stats("m").unwrap().shed, 1);
    }

    #[test]
    fn shutdown_stops_admission_and_drains_tickets() {
        let reference = tiny_plan(5, 3);
        let router = Router::new();
        router.register("m", tiny_plan(5, 3), ModelConfig::with_replicas(2)).unwrap();
        router.pause("m").unwrap();
        let tickets: Vec<Ticket> =
            (0..5).map(|s| router.submit("m", &sample(s)).expect("admitted")).collect();
        router.shutdown();
        // Every admitted ticket was delivered by the drain.
        for (s, t) in tickets.into_iter().enumerate() {
            let got = t.try_take().expect("drained before shutdown returned");
            assert_eq!(got.as_slice(), reference.infer(&sample(s)).as_slice());
        }
        assert!(matches!(router.submit("m", &sample(0)), Err(RouterError::ShuttingDown)));
        assert!(matches!(
            router.register("late", tiny_plan(6, 2), ModelConfig::default()),
            Err(RouterError::ShuttingDown)
        ));
        // Idempotent.
        router.shutdown();
    }

    #[test]
    fn observability_snapshot_covers_the_stack() {
        let router = Router::new();
        router.register("m", tiny_plan(8, 3), ModelConfig::with_replicas(2)).unwrap();
        for s in 0..4 {
            router.submit("m", &sample(s)).unwrap().wait();
        }
        let json = router.observability_json();
        for needle in [
            "\"models\"",
            "\"form\":\"f32\"",
            "\"replicas\":2",
            "\"queue_depths\"",
            "\"p999_ns\"",
            "\"latency_hist\"",
            "\"profile\":null",
            "\"pool\"",
            "\"local_pushes\"",
            "\"trace\"",
            "\"enabled\":false",
            "\"metrics\"",
            "\"serve.m.requests\":4",
        ] {
            assert!(json.contains(needle), "{needle} missing from {json}");
        }
    }

    #[test]
    fn tracing_spans_flow_from_submissions() {
        let router = Router::new();
        assert!(!router.tracing_enabled());
        router.enable_tracing();
        router.register("m", tiny_plan(9, 3), ModelConfig::with_replicas(1)).unwrap();
        let t = router.submit("m", &sample(0)).unwrap();
        let id = t.trace_id().expect("tracing on: ticket carries its id");
        t.wait();
        let spans = router.trace_log().spans();
        let kinds: Vec<SpanKind> = spans.iter().filter(|s| s.trace == id).map(|s| s.kind).collect();
        assert_eq!(kinds, vec![SpanKind::Queued, SpanKind::Batched, SpanKind::Executed]);
        router.disable_tracing();
        let t = router.submit("m", &sample(1)).unwrap();
        assert!(t.trace_id().is_none(), "tracing off: no id minted");
        t.wait();
    }

    #[test]
    fn debug_formats() {
        let router = Router::new();
        router.register("m", tiny_plan(7, 2), ModelConfig::with_replicas(2)).unwrap();
        let dbg = format!("{router:?}");
        assert!(dbg.contains("m ×2"));
    }
}
