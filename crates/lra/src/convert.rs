//! Network surgery: replacing dense layers by low-rank factored layers.
//!
//! Used two ways:
//!
//! * **Direct LRA** (the paper's Table 1 baseline): factorize a trained
//!   network's layers post-hoc at fixed ranks, *without* retraining —
//!   accuracy collapses, motivating rank clipping;
//! * **full-rank conversion** (Algorithm 2, line 1–3): replace each layer's
//!   `W` by an exact `U·Vᵀ` with `K = M`, the starting point for iterative
//!   clipping.

use scissor_linalg::Matrix;
use scissor_nn::layers::{Conv2d, Linear, LowRankConv2d, LowRankLinear};
use scissor_nn::{Layer as _, Network};

use crate::error::{LraError, Result};
use crate::method::LraMethod;

/// Describes what kind of weight a layer currently holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LayerKind {
    /// Dense convolution.
    Conv,
    /// Dense fully-connected.
    Linear,
    /// Already factored (either flavor).
    LowRank,
    /// No weight matrix (pool, relu, …).
    Stateless,
}

/// Classifies a layer by name.
///
/// # Errors
///
/// Returns [`LraError::UnknownLayer`] if the layer does not exist.
pub fn layer_kind(net: &Network, name: &str) -> Result<LayerKind> {
    let layer = net.layer(name).ok_or_else(|| LraError::UnknownLayer { name: name.into() })?;
    let any = layer.as_any();
    if any.is::<Conv2d>() {
        Ok(LayerKind::Conv)
    } else if any.is::<Linear>() {
        Ok(LayerKind::Linear)
    } else if layer.low_rank_factors().is_some() {
        Ok(LayerKind::LowRank)
    } else {
        Ok(LayerKind::Stateless)
    }
}

/// The fan-out `M` of a layer's weight matrix (dense or composed low-rank).
///
/// # Errors
///
/// Returns [`LraError::UnknownLayer`] / [`LraError::NotFactorizable`].
pub fn layer_fan_out(net: &Network, name: &str) -> Result<usize> {
    let layer = net.layer(name).ok_or_else(|| LraError::UnknownLayer { name: name.into() })?;
    if let Some(w) = layer.weight_matrix() {
        return Ok(w.cols());
    }
    if let Some((_, v)) = layer.low_rank_factors() {
        return Ok(v.rows());
    }
    Err(LraError::NotFactorizable { name: name.into() })
}

/// Current rank of a layer: `K` for low-rank layers, `M` for dense ones.
///
/// # Errors
///
/// Returns [`LraError::UnknownLayer`] / [`LraError::NotFactorizable`].
pub fn layer_rank(net: &Network, name: &str) -> Result<usize> {
    let layer = net.layer(name).ok_or_else(|| LraError::UnknownLayer { name: name.into() })?;
    if let Some((u, _)) = layer.low_rank_factors() {
        return Ok(u.cols());
    }
    if let Some(w) = layer.weight_matrix() {
        return Ok(w.cols());
    }
    Err(LraError::NotFactorizable { name: name.into() })
}

/// Replaces the dense layer `name` with its rank-`k` factorization.
///
/// Works on [`Conv2d`] and [`Linear`]; a layer that is already low-rank is
/// re-factored from its *composed* weight (used by Direct LRA on arbitrary
/// checkpoints).
///
/// # Errors
///
/// Returns [`LraError::NotFactorizable`] for stateless layers and
/// propagates factorization failures.
pub fn factorize_layer(net: &mut Network, name: &str, k: usize, method: LraMethod) -> Result<()> {
    let layer = net.layer(name).ok_or_else(|| LraError::UnknownLayer { name: name.into() })?;
    let any = layer.as_any();
    if let Some(conv) = any.downcast_ref::<Conv2d>() {
        let w = conv.weight_matrix().expect("dense conv has a weight");
        let (u, v) = method.factorize(w, k)?;
        let replacement = conv.to_low_rank(u, v);
        net.replace_layer(name, Box::new(replacement))?;
        return Ok(());
    }
    if let Some(lin) = any.downcast_ref::<Linear>() {
        let w = lin.weight_matrix().expect("dense linear has a weight");
        let (u, v) = method.factorize(w, k)?;
        let replacement = lin.to_low_rank(u, v);
        net.replace_layer(name, Box::new(replacement))?;
        return Ok(());
    }
    if let Some(lr) = any.downcast_ref::<LowRankConv2d>() {
        let w = lr.composed_weight();
        let bias = bias_of(net, name)?;
        let (u, v) = method.factorize(&w, k)?;
        let geom = lr.geometry();
        let replacement = LowRankConv2d::from_factors(name.to_string(), geom, u, v, bias);
        net.replace_layer(name, Box::new(replacement))?;
        return Ok(());
    }
    if let Some(lr) = any.downcast_ref::<LowRankLinear>() {
        let w = lr.composed_weight();
        let bias = bias_of(net, name)?;
        let (u, v) = method.factorize(&w, k)?;
        let replacement = LowRankLinear::from_factors(name.to_string(), u, v, bias);
        net.replace_layer(name, Box::new(replacement))?;
        return Ok(());
    }
    Err(LraError::NotFactorizable { name: name.into() })
}

fn bias_of(net: &Network, layer: &str) -> Result<Matrix> {
    net.param(&format!("{layer}.bias"))
        .map(|p| p.value().clone())
        .ok_or_else(|| LraError::NotFactorizable { name: layer.into() })
}

/// Converts each named dense layer to an exact full-rank factorization
/// (`K = M`) — Algorithm 2's initialization. Layers already low-rank are
/// left untouched.
///
/// # Errors
///
/// Propagates per-layer factorization failures.
pub fn to_full_rank(net: &mut Network, layers: &[String], method: LraMethod) -> Result<()> {
    for name in layers {
        if layer_kind(net, name)? == LayerKind::LowRank {
            continue;
        }
        let m = layer_fan_out(net, name)?;
        factorize_layer(net, name, m, method)?;
    }
    Ok(())
}

/// The Direct LRA baseline: factorizes every `(layer, rank)` pair post-hoc,
/// without retraining (Table 1's accuracy-collapse row).
///
/// # Errors
///
/// Propagates per-layer failures.
pub fn direct_lra(net: &mut Network, ranks: &[(String, usize)], method: LraMethod) -> Result<()> {
    for (name, k) in ranks {
        factorize_layer(net, name, *k, method)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use scissor_nn::{NetworkBuilder, Phase, Tensor4};

    fn net() -> Network {
        let mut rng = StdRng::seed_from_u64(3);
        NetworkBuilder::new((1, 8, 8))
            .conv("conv1", 6, 3, 1, 0, &mut rng)
            .maxpool(2, 2)
            .linear("fc1", 12, &mut rng)
            .relu()
            .linear("fc2", 4, &mut rng)
            .build()
    }

    #[test]
    fn kinds_are_classified() {
        let n = net();
        assert_eq!(layer_kind(&n, "conv1").unwrap(), LayerKind::Conv);
        assert_eq!(layer_kind(&n, "fc1").unwrap(), LayerKind::Linear);
        assert_eq!(layer_kind(&n, "pool1").unwrap(), LayerKind::Stateless);
        assert!(layer_kind(&n, "nope").is_err());
    }

    #[test]
    fn full_rank_conversion_preserves_outputs() {
        let mut n = net();
        let x = Tensor4::from_vec(2, 1, 8, 8, (0..128).map(|i| (i % 11) as f32 * 0.1).collect());
        let before = n.forward(&x, Phase::Eval);
        to_full_rank(&mut n, &["conv1".into(), "fc1".into()], LraMethod::Pca).unwrap();
        assert_eq!(layer_kind(&n, "conv1").unwrap(), LayerKind::LowRank);
        assert_eq!(layer_rank(&n, "conv1").unwrap(), 6);
        let after = n.forward(&x, Phase::Eval);
        let diff = before
            .as_slice()
            .iter()
            .zip(after.as_slice())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(diff < 1e-3, "full-rank factorization must be (near-)exact, diff={diff}");
    }

    #[test]
    fn direct_lra_truncates_ranks() {
        let mut n = net();
        direct_lra(&mut n, &[("conv1".to_string(), 2), ("fc1".to_string(), 3)], LraMethod::Pca)
            .unwrap();
        assert_eq!(layer_rank(&n, "conv1").unwrap(), 2);
        assert_eq!(layer_rank(&n, "fc1").unwrap(), 3);
        // fc2 untouched.
        assert_eq!(layer_kind(&n, "fc2").unwrap(), LayerKind::Linear);
    }

    #[test]
    fn refactorizing_a_low_rank_layer_works() {
        let mut n = net();
        factorize_layer(&mut n, "fc1", 5, LraMethod::Pca).unwrap();
        factorize_layer(&mut n, "fc1", 2, LraMethod::Svd).unwrap();
        assert_eq!(layer_rank(&n, "fc1").unwrap(), 2);
    }

    #[test]
    fn stateless_layer_is_rejected() {
        let mut n = net();
        assert!(matches!(
            factorize_layer(&mut n, "pool1", 2, LraMethod::Pca),
            Err(LraError::NotFactorizable { .. })
        ));
    }

    #[test]
    fn fan_out_and_rank_queries() {
        let n = net();
        assert_eq!(layer_fan_out(&n, "fc2").unwrap(), 4);
        assert_eq!(layer_rank(&n, "fc2").unwrap(), 4);
        assert!(layer_fan_out(&n, "relu1").is_err());
    }
}
