//! Rank clipping — the paper's Algorithm 2.
//!
//! Instead of factorizing once after training (which collapses accuracy,
//! Table 1), rank clipping interleaves *gentle* clips with training: every
//! `S` iterations each low-rank layer's `U` factor is re-analyzed by PCA,
//! and if a lower-rank subspace reconstructs `U` within the tolerable error
//! `ε`, the layer shrinks to it (`U ← Û`, `Vᵀ ← V̂ᵀ·Vᵀ`). Training then
//! recovers the small perturbation before the next clip, so layers converge
//! to their optimal ranks without accuracy loss (Fig. 3).

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use scissor_data::Dataset;
use scissor_nn::{Network, Sgd};

use crate::convert::{layer_rank, to_full_rank};
use crate::error::{LraError, Result};
use crate::method::LraMethod;

/// Configuration of the rank-clipping trainer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RankClipConfig {
    /// Tolerable clipping error `ε` of Algorithm 2 (e.g. 0.03).
    pub eps: f64,
    /// Clip cadence `S`: train this many iterations between clips.
    pub clip_every: usize,
    /// Total training iterations `I`.
    pub max_iters: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Optimizer settings for the interleaved training.
    pub sgd: Sgd,
    /// LRA back-end (PCA in the paper; SVD for the §3.1 comparison).
    pub method: LraMethod,
    /// Names of the layers to clip (the paper clips everything except the
    /// final classifier, whose rank already equals the class count).
    pub layers: Vec<String>,
    /// RNG seed for batch shuffling.
    pub seed: u64,
    /// Batch size used for accuracy evaluation at trace points.
    pub eval_batch: usize,
}

impl RankClipConfig {
    /// A reasonable starting configuration for the given layers.
    pub fn new(eps: f64, layers: Vec<String>) -> Self {
        Self {
            eps,
            clip_every: 100,
            max_iters: 1000,
            batch_size: 32,
            sgd: Sgd::with_momentum(0.01),
            method: LraMethod::Pca,
            layers,
            seed: 0,
            eval_batch: 256,
        }
    }
}

/// One trace point of a rank-clipping run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClipRecord {
    /// Training iteration at which the record was taken.
    pub iter: usize,
    /// Rank of each clipped layer, in `layer_names` order.
    pub ranks: Vec<usize>,
    /// Test accuracy at this point.
    pub accuracy: f64,
}

/// Result of a rank-clipping run (the data behind Fig. 3 and Table 1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RankClipOutcome {
    /// Layer names, aligning with every record's `ranks` vector.
    pub layer_names: Vec<String>,
    /// Per-clip-step trace (iteration, ranks, accuracy).
    pub trace: Vec<ClipRecord>,
    /// Ranks after the final iteration.
    pub final_ranks: Vec<usize>,
    /// Test accuracy after the final iteration.
    pub final_accuracy: f64,
    /// Full ranks (`M`) of each layer, for rank-ratio reporting.
    pub full_ranks: Vec<usize>,
}

impl RankClipOutcome {
    /// `(layer, K/M)` rank ratios at the end of the run (Fig. 3's y-axis).
    pub fn final_rank_ratios(&self) -> Vec<(String, f64)> {
        self.layer_names
            .iter()
            .zip(self.final_ranks.iter().zip(&self.full_ranks))
            .map(|(n, (&k, &m))| (n.clone(), if m == 0 { 0.0 } else { k as f64 / m as f64 }))
            .collect()
    }

    /// `(layer, final rank)` pairs.
    pub fn final_rank_map(&self) -> Vec<(String, usize)> {
        self.layer_names.iter().cloned().zip(self.final_ranks.iter().copied()).collect()
    }
}

/// Clips every registered layer once (Algorithm 2, lines 5–12).
/// Returns `true` if any rank changed.
fn clip_step(net: &mut Network, cfg: &RankClipConfig) -> Result<bool> {
    let mut changed = false;
    for name in &cfg.layers {
        let layer = net.layer(name).ok_or_else(|| LraError::UnknownLayer { name: name.clone() })?;
        let (u, v) = match layer.low_rank_factors() {
            Some((u, v)) => (u.clone(), v.clone()),
            None => return Err(LraError::NotFactorizable { name: name.clone() }),
        };
        let k_now = u.cols();
        if k_now <= 1 {
            continue;
        }
        let k_hat = cfg.method.min_rank_for_error(&u, cfg.eps)?.max(1);
        if k_hat < k_now {
            // U ≈ Û·V̂ᵀ  ⇒  W ≈ Û·(V·V̂)ᵀ
            let (u_hat, v_hat) = cfg.method.factorize(&u, k_hat)?;
            let v_new = v.matmul(&v_hat);
            let layer =
                net.layer_mut(name).ok_or_else(|| LraError::UnknownLayer { name: name.clone() })?;
            if !layer.set_low_rank_factors(u_hat, v_new) {
                return Err(LraError::NotFactorizable { name: name.clone() });
            }
            changed = true;
        }
    }
    Ok(changed)
}

/// Runs rank clipping (Algorithm 2) on `net`.
///
/// Dense layers named in the config are first converted to exact full-rank
/// factorizations; the loop then alternates clip steps and `S` training
/// iterations until `max_iters`.
///
/// # Errors
///
/// Fails if a named layer is missing or not factorizable, or an LRA solve
/// fails.
pub fn rank_clip(
    net: &mut Network,
    train: &Dataset,
    test: &Dataset,
    cfg: &RankClipConfig,
) -> Result<RankClipOutcome> {
    // Record full ranks before conversion (M = fan-out of each layer).
    let full_ranks: Vec<usize> =
        cfg.layers.iter().map(|n| crate::convert::layer_fan_out(net, n)).collect::<Result<_>>()?;
    to_full_rank(net, &cfg.layers, cfg.method)?;

    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut trace = Vec::new();
    let mut iter = 0usize;
    let mut batches: Vec<Vec<usize>> = Vec::new();

    let record = |net: &mut Network, iter: usize, trace: &mut Vec<ClipRecord>| -> Result<()> {
        let ranks: Vec<usize> =
            cfg.layers.iter().map(|n| layer_rank(net, n)).collect::<Result<_>>()?;
        // Trace accuracy is a pure serving workload: run it through the
        // frozen forward-only plan (bitwise-identical logits, no backward
        // caches disturbed mid-training). Networks carrying layer types
        // the plan cannot freeze (the Layer trait is open) fall back to
        // the container's eval forward — same results either way.
        let accuracy = match net.compile() {
            Ok(plan) => plan.evaluate(test.images(), test.labels(), cfg.eval_batch),
            Err(_) => net.evaluate(test.images(), test.labels(), cfg.eval_batch),
        };
        trace.push(ClipRecord { iter, ranks, accuracy });
        Ok(())
    };

    while iter < cfg.max_iters {
        clip_step(net, cfg)?;
        record(net, iter, &mut trace)?;
        let stint = cfg.clip_every.min(cfg.max_iters - iter);
        for _ in 0..stint {
            if batches.is_empty() {
                batches = train.shuffled_batches(cfg.batch_size, &mut rng);
                batches.reverse(); // pop from the back in shuffled order
            }
            let idx = batches.pop().expect("refilled when empty");
            let (images, labels) = train.batch(&idx);
            net.train_step(&images, &labels, &cfg.sgd, iter);
            iter += 1;
        }
    }
    // Final clip + record so the outcome reflects the converged ranks.
    clip_step(net, cfg)?;
    record(net, iter, &mut trace)?;

    let last = trace.last().expect("at least one record");
    Ok(RankClipOutcome {
        layer_names: cfg.layers.clone(),
        final_ranks: last.ranks.clone(),
        final_accuracy: last.accuracy,
        trace,
        full_ranks,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use scissor_data::{synth_mnist, SynthOptions};
    use scissor_nn::NetworkBuilder;

    /// A small net on low-res synth digits: fast enough for unit tests.
    fn small_setup() -> (Network, Dataset, Dataset) {
        let mut rng = StdRng::seed_from_u64(7);
        let net = NetworkBuilder::new((1, 28, 28))
            .conv("conv1", 8, 5, 2, 0, &mut rng)
            .maxpool(2, 2)
            .linear("fc1", 24, &mut rng)
            .relu()
            .linear("fc2", 10, &mut rng)
            .build();
        let train = synth_mnist(300, 11, SynthOptions::default());
        let test = synth_mnist(100, 12, SynthOptions::default());
        (net, train, test)
    }

    fn pretrain(net: &mut Network, train: &Dataset, iters: usize) {
        let mut rng = StdRng::seed_from_u64(21);
        let sgd = Sgd::with_momentum(0.02);
        let mut i = 0;
        'outer: loop {
            for idx in train.shuffled_batches(32, &mut rng) {
                if i >= iters {
                    break 'outer;
                }
                let (x, y) = train.batch(&idx);
                net.train_step(&x, &y, &sgd, i);
                i += 1;
            }
        }
    }

    #[test]
    fn ranks_shrink_and_accuracy_survives() {
        let (mut net, train, test) = small_setup();
        pretrain(&mut net, &train, 80);
        let baseline = net.evaluate(test.images(), test.labels(), 100);
        let mut cfg = RankClipConfig::new(0.05, vec!["conv1".into(), "fc1".into()]);
        cfg.max_iters = 160;
        cfg.clip_every = 40;
        cfg.sgd = Sgd::with_momentum(0.02);
        let outcome = rank_clip(&mut net, &train, &test, &cfg).unwrap();

        assert_eq!(outcome.full_ranks, vec![8, 24]);
        // Ranks must be non-increasing over the trace.
        for pair in outcome.trace.windows(2) {
            for (a, b) in pair[0].ranks.iter().zip(&pair[1].ranks) {
                assert!(b <= a, "ranks must never grow");
            }
        }
        // Something must actually have been clipped.
        assert!(
            outcome.final_ranks.iter().zip(&outcome.full_ranks).any(|(k, m)| k < m),
            "no layer was clipped: {:?}",
            outcome.final_ranks
        );
        // Accuracy must stay in the neighborhood of the baseline.
        assert!(
            outcome.final_accuracy >= baseline - 0.15,
            "accuracy collapsed: {} vs baseline {}",
            outcome.final_accuracy,
            baseline
        );
    }

    #[test]
    fn tighter_eps_clips_less() {
        let (mut net, train, test) = small_setup();
        pretrain(&mut net, &train, 60);
        let snapshot = net.state_dict();

        let run = |state: &[(String, scissor_linalg::Matrix)], eps: f64| {
            let (mut n, _, _) = small_setup();
            n.load_state_dict(state).unwrap();
            let mut cfg = RankClipConfig::new(eps, vec!["fc1".into()]);
            cfg.max_iters = 40;
            cfg.clip_every = 20;
            rank_clip(&mut n, &train, &test, &cfg).unwrap().final_ranks[0]
        };
        let tight = run(&snapshot, 0.001);
        let loose = run(&snapshot, 0.3);
        assert!(loose <= tight, "looser eps must clip at least as hard: {loose} vs {tight}");
    }

    #[test]
    fn rank_ratios_and_map() {
        let outcome = RankClipOutcome {
            layer_names: vec!["a".into(), "b".into()],
            trace: vec![],
            final_ranks: vec![5, 10],
            final_accuracy: 0.9,
            full_ranks: vec![20, 10],
        };
        let ratios = outcome.final_rank_ratios();
        assert_eq!(ratios[0], ("a".to_string(), 0.25));
        assert_eq!(ratios[1].1, 1.0);
        assert_eq!(outcome.final_rank_map()[0], ("a".to_string(), 5));
    }

    #[test]
    fn unknown_layer_is_an_error() {
        let (mut net, train, test) = small_setup();
        let cfg = RankClipConfig::new(0.05, vec!["ghost".into()]);
        assert!(matches!(
            rank_clip(&mut net, &train, &test, &cfg),
            Err(LraError::UnknownLayer { .. })
        ));
    }
}
