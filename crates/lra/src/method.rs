//! Low-rank-approximation back-ends: PCA (the paper's default) and SVD
//! (evaluated as inferior in §3.1 — crossbar area 32.97 % vs 13.62 % on
//! LeNet).

use serde::{Deserialize, Serialize};

use scissor_linalg::{svd, LinalgError, Matrix, Pca};

/// Which LRA technique rank clipping uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum LraMethod {
    /// Principal components analysis (Algorithm 1) — the paper's choice.
    #[default]
    Pca,
    /// Singular value decomposition with √σ-balanced factors.
    Svd,
}

impl LraMethod {
    /// Smallest rank whose reconstruction error (Eq. 3) is at most `eps`.
    ///
    /// # Errors
    ///
    /// Propagates solver convergence failures (not observed for finite
    /// layer-sized inputs).
    pub fn min_rank_for_error(&self, w: &Matrix, eps: f64) -> Result<usize, LinalgError> {
        match self {
            LraMethod::Pca => Ok(Pca::fit(w)?.min_rank_for_error(eps)),
            LraMethod::Svd => Ok(svd(w)?.min_rank_for_error(eps)),
        }
    }

    /// Rank-`k` factor pair `(U, V)` with `w ≈ U·Vᵀ`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidRank`] when `k` exceeds the matrix's
    /// column count, or a convergence failure from the solver.
    pub fn factorize(&self, w: &Matrix, k: usize) -> Result<(Matrix, Matrix), LinalgError> {
        match self {
            LraMethod::Pca => Pca::fit(w)?.factors(w, k),
            LraMethod::Svd => {
                let d = svd(w)?;
                let k = k.min(d.sigma.len());
                d.factors(k)
            }
        }
    }

    /// Both of the above in one pass: picks the minimum rank for `eps` and
    /// returns `(rank, U, V)`.
    ///
    /// # Errors
    ///
    /// Propagates solver failures.
    pub fn clip(&self, w: &Matrix, eps: f64) -> Result<(usize, Matrix, Matrix), LinalgError> {
        match self {
            LraMethod::Pca => {
                let pca = Pca::fit(w)?;
                let k = pca.min_rank_for_error(eps);
                let (u, v) = pca.factors(w, k)?;
                Ok((k, u, v))
            }
            LraMethod::Svd => {
                let d = svd(w)?;
                let k = d.min_rank_for_error(eps);
                let (u, v) = d.factors(k)?;
                Ok((k, u, v))
            }
        }
    }
}

impl std::fmt::Display for LraMethod {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LraMethod::Pca => write!(f, "PCA"),
            LraMethod::Svd => write!(f, "SVD"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn low_rank_matrix(n: usize, m: usize, rank: usize) -> Matrix {
        let u = Matrix::from_fn(n, rank, |i, j| ((i * 13 + j * 7) % 11) as f32 * 0.2 - 1.0);
        let v = Matrix::from_fn(m, rank, |i, j| ((i * 17 + j * 5) % 13) as f32 * 0.15 - 0.9);
        u.matmul_nt(&v)
    }

    #[test]
    fn both_methods_find_true_rank() {
        let w = low_rank_matrix(30, 12, 4);
        assert_eq!(LraMethod::Pca.min_rank_for_error(&w, 1e-8).unwrap(), 4);
        assert_eq!(LraMethod::Svd.min_rank_for_error(&w, 1e-8).unwrap(), 4);
    }

    #[test]
    fn factorizations_reconstruct_within_eps() {
        let w = low_rank_matrix(20, 10, 6);
        for method in [LraMethod::Pca, LraMethod::Svd] {
            let (k, u, v) = method.clip(&w, 0.05).unwrap();
            assert!(k <= 6);
            let err = w.relative_error(&u.matmul_nt(&v));
            assert!(err <= 0.05 + 1e-6, "{method}: err {err}");
        }
    }

    #[test]
    fn svd_factors_are_balanced() {
        let w = low_rank_matrix(16, 8, 3);
        let (u, v) = LraMethod::Svd.factorize(&w, 3).unwrap();
        // √σ balancing keeps both factor norms within a modest ratio.
        let ru = u.frobenius_norm();
        let rv = v.frobenius_norm();
        assert!(ru / rv < 10.0 && rv / ru < 10.0, "unbalanced factors {ru} vs {rv}");
    }

    #[test]
    fn invalid_rank_rejected() {
        let w = low_rank_matrix(6, 4, 2);
        assert!(LraMethod::Pca.factorize(&w, 9).is_err());
    }

    #[test]
    fn display_names() {
        assert_eq!(LraMethod::Pca.to_string(), "PCA");
        assert_eq!(LraMethod::Svd.to_string(), "SVD");
        assert_eq!(LraMethod::default(), LraMethod::Pca);
    }
}
