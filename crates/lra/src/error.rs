//! Error type for the rank-clipping crate.

use std::error::Error;
use std::fmt;

use scissor_linalg::LinalgError;
use scissor_nn::NnError;

/// Errors produced by `scissor-lra` operations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum LraError {
    /// The named layer does not exist in the network.
    UnknownLayer {
        /// Requested layer name.
        name: String,
    },
    /// The named layer is neither dense-factorizable nor low-rank.
    NotFactorizable {
        /// Offending layer name.
        name: String,
    },
    /// A linear-algebra failure (solver non-convergence, bad rank).
    Linalg(LinalgError),
    /// A network-surgery failure.
    Nn(NnError),
}

impl fmt::Display for LraError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LraError::UnknownLayer { name } => write!(f, "unknown layer `{name}`"),
            LraError::NotFactorizable { name } => {
                write!(f, "layer `{name}` has no factorizable weight matrix")
            }
            LraError::Linalg(e) => write!(f, "linear algebra failure: {e}"),
            LraError::Nn(e) => write!(f, "network surgery failure: {e}"),
        }
    }
}

impl Error for LraError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            LraError::Linalg(e) => Some(e),
            LraError::Nn(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinalgError> for LraError {
    fn from(e: LinalgError) -> Self {
        LraError::Linalg(e)
    }
}

impl From<NnError> for LraError {
    fn from(e: NnError) -> Self {
        LraError::Nn(e)
    }
}

/// Convenience alias for results in this crate.
pub type Result<T> = std::result::Result<T, LraError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_and_sources() {
        let e = LraError::UnknownLayer { name: "convX".into() };
        assert!(e.to_string().contains("convX"));
        let e = LraError::from(LinalgError::InvalidRank { requested: 5, max: 2 });
        assert!(e.source().is_some());
        assert!(e.to_string().contains("invalid rank"));
    }
}
