//! # scissor-lra
//!
//! **Rank clipping** — step 1 of the
//! [Group Scissor (DAC 2017)] framework.
//!
//! Rank clipping integrates low-rank approximation into training: every `S`
//! iterations, each layer's `U` factor is re-analyzed (PCA by default) and
//! clipped to the smallest rank that reconstructs it within a tolerable
//! error `ε`; the following `S` training iterations recover the small
//! perturbation. Layers converge to their optimal ranks with no accuracy
//! loss, shrinking crossbar area to 13.62 % (LeNet) / 51.81 % (ConvNet) in
//! the paper.
//!
//! Provided here:
//!
//! * [`LraMethod`] — PCA / SVD back-ends;
//! * [`convert`] — network surgery (full-rank conversion, the Direct-LRA
//!   baseline of Table 1);
//! * [`rank_clip`] — Algorithm 2, with per-clip-step traces (Fig. 3).
//!
//! [Group Scissor (DAC 2017)]: https://arxiv.org/abs/1702.03443

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod convert;

mod clip;
mod error;
mod method;

pub use clip::{rank_clip, ClipRecord, RankClipConfig, RankClipOutcome};
pub use convert::{direct_lra, factorize_layer, layer_kind, layer_rank, to_full_rank, LayerKind};
pub use error::{LraError, Result};
pub use method::LraMethod;
