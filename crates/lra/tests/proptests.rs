//! Property-based tests for the LRA back-ends and network surgery.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use scissor_linalg::Matrix;
use scissor_lra::{factorize_layer, layer_rank, LraMethod};
use scissor_nn::{NetworkBuilder, Phase, Tensor4};

fn matrix_strategy() -> impl Strategy<Value = Matrix> {
    (2usize..20, 2usize..12).prop_flat_map(|(n, m)| {
        proptest::collection::vec(-1.0f32..1.0, n * m)
            .prop_map(move |data| Matrix::from_vec(n, m, data).expect("sized"))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn clip_respects_eps_for_both_methods(w in matrix_strategy(), eps in 0.001f64..0.5) {
        for method in [LraMethod::Pca, LraMethod::Svd] {
            let (k, u, v) = method.clip(&w, eps).expect("clip");
            prop_assert!(k >= 1 && k <= w.cols());
            let err = w.relative_error(&u.matmul_nt(&v));
            prop_assert!(err <= eps + 1e-4, "{method}: err {err} > eps {eps}");
        }
    }

    #[test]
    fn min_rank_monotone_in_eps(w in matrix_strategy(), e1 in 0.001f64..0.1, e2 in 0.1f64..0.9) {
        for method in [LraMethod::Pca, LraMethod::Svd] {
            let tight = method.min_rank_for_error(&w, e1).expect("rank");
            let loose = method.min_rank_for_error(&w, e2).expect("rank");
            prop_assert!(loose <= tight);
        }
    }

    #[test]
    fn factorize_layer_changes_rank_but_not_output_much(
        seed in 0u64..300,
        keep_ratio in 0.5f64..1.0,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut net = NetworkBuilder::new((1, 4, 4))
            .linear("fc", 8, &mut rng)
            .build();
        let x = Tensor4::from_vec(
            2,
            1,
            4,
            4,
            (0..32).map(|i| (((i * 7 + seed as usize) % 11) as f32 - 5.0) * 0.1).collect(),
        );
        let before = net.forward(&x, Phase::Eval);
        let full = layer_rank(&net, "fc").expect("rank");
        let k = ((full as f64 * keep_ratio).round() as usize).max(1);
        factorize_layer(&mut net, "fc", k, LraMethod::Pca).expect("factorize");
        prop_assert_eq!(layer_rank(&net, "fc").expect("rank"), k);
        let after = net.forward(&x, Phase::Eval);
        // Output difference is bounded by the spectrum tail; at high keep
        // ratios it must stay small relative to the signal.
        let num: f64 = before
            .as_slice()
            .iter()
            .zip(after.as_slice())
            .map(|(a, b)| ((a - b) as f64).powi(2))
            .sum();
        let den: f64 = before.as_slice().iter().map(|a| (*a as f64).powi(2)).sum();
        if k == full {
            prop_assert!(num <= 1e-6 * (1.0 + den), "full rank must be exact");
        }
    }

    #[test]
    fn svd_and_pca_agree_on_exact_low_rank(true_rank in 1usize..5, seed in 0u64..300) {
        let n = 14;
        let m = 9;
        let u = Matrix::from_fn(n, true_rank, |i, j| {
            (((i * 13 + j * 7 + seed as usize) % 17) as f32 - 8.0) * 0.1
        });
        let v = Matrix::from_fn(m, true_rank, |i, j| {
            (((i * 11 + j * 5 + seed as usize) % 13) as f32 - 6.0) * 0.1
        });
        let w = u.matmul_nt(&v);
        prop_assume!(w.frobenius_norm() > 1e-3);
        let k_pca = LraMethod::Pca.min_rank_for_error(&w, 1e-9).expect("pca");
        let k_svd = LraMethod::Svd.min_rank_for_error(&w, 1e-9).expect("svd");
        prop_assert_eq!(k_pca, k_svd);
        prop_assert!(k_pca <= true_rank);
    }
}
