//! Concurrent-compression determinism at the low-rank seam: several threads
//! clipping layers through the pool-parallel spectral solvers at once must
//! each produce factors bitwise identical to an undisturbed solo run. This
//! is the property that lets an autoscaling fleet re-compress many models
//! concurrently on one shared work-stealing pool without cross-model
//! interference (ISSUE 8's end-to-end claim, pinned here at the `LraMethod`
//! seam where the pipeline consumes SVD/PCA).

use scissor_linalg::Matrix;
use scissor_lra::LraMethod;
use std::sync::Once;

/// Runs before any pool use, so the lazily initialized global pool picks up
/// a deterministic multi-worker size.
fn init() {
    static FORCE_THREADS: Once = Once::new();
    FORCE_THREADS.call_once(|| {
        std::env::set_var("RAYON_NUM_THREADS", "4");
    });
}

fn assert_bits_eq(a: &Matrix, b: &Matrix, what: &str) {
    assert_eq!(a.shape(), b.shape(), "{what}: shape mismatch");
    for (i, (x, y)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: element {i} differs: {x} vs {y}");
    }
}

/// A layer-sized deterministic weight matrix, distinct per seed.
fn weights(rows: usize, cols: usize, seed: usize) -> Matrix {
    Matrix::from_fn(rows, cols, |i, j| {
        ((i * 13 + j * 29 + seed * 7) % 31) as f32 * 0.11 - 1.6
            + ((i + 2 * j + seed) as f32 * 0.25).sin()
    })
}

#[test]
fn concurrent_clips_match_solo_runs_bitwise() {
    init();
    // Solo references, computed with the pool otherwise idle.
    let jobs: Vec<(LraMethod, Matrix, f64)> = vec![
        (LraMethod::Svd, weights(200, 64, 1), 0.02),
        (LraMethod::Pca, weights(160, 80, 2), 0.05),
        (LraMethod::Svd, weights(150, 33, 3), 0.01),
        (LraMethod::Pca, weights(96, 96, 4), 0.03),
    ];
    let solo: Vec<(usize, Matrix, Matrix)> =
        jobs.iter().map(|(m, w, eps)| m.clip(w, *eps).expect("solo clip")).collect();

    // The same four clips, three repetitions each, all in flight at once on
    // the shared pool — every repetition must reproduce the solo factors
    // exactly.
    std::thread::scope(|s| {
        for (job, reference) in jobs.iter().zip(&solo) {
            for _rep in 0..3 {
                s.spawn(move || {
                    let (method, w, eps) = job;
                    let (rank, u, v) = method.clip(w, *eps).expect("concurrent clip");
                    assert_eq!(rank, reference.0, "rank drifted under concurrency");
                    assert_bits_eq(&u, &reference.1, "U factor");
                    assert_bits_eq(&v, &reference.2, "V factor");
                });
            }
        }
    });
}
