//! # scissor-obs
//!
//! Unified telemetry for the Group Scissor serving stack: one crate that
//! answers "where did this request's 7 ms go?" across the whole pipeline
//! instead of scattering counters over `ServeStats`, `pool_stats()` and
//! ad-hoc prints. Three cooperating subsystems:
//!
//! * **Metrics registry** ([`Registry`]): named [`Counter`]s, [`Gauge`]s,
//!   log₂-bucket [`Histogram`]s and (the one documented exception to
//!   lock-freedom) [`TextGauge`]s. Registration is a cold-path mutex;
//!   every *update* afterwards is a relaxed atomic on an `Arc`'d cell.
//!   [`Registry::snapshot`] produces an immutable [`Snapshot`] that
//!   subtracts against an earlier one ([`Snapshot::delta_since`]),
//!   serializes to JSON through the vendored serde, and renders as an
//!   aligned text table ([`Snapshot::render_table`]).
//! * **Request tracing** ([`TraceLog`]): [`TraceId`]s minted at admission
//!   and carried ticket → replica queue → batcher → `infer_into`,
//!   producing [`SpanRecord`]s (queued / batched / executed with batch
//!   size, replica id and serving form). Timestamps are supplied by the
//!   *caller* as plain nanoseconds — the serving tier passes its `Clock`,
//!   so `VirtualClock` tests assert exact span sequences with zero
//!   sleeps. Disabled tracing costs one relaxed load per check.
//! * **Inference profiling** ([`Profiler`]): per-step wall time,
//!   working-set bytes (static, from the tile planner's footprint model)
//!   and tile decisions, recorded into preallocated atomic slots so even
//!   the *enabled* path is allocation-free. The `CompiledNet` hot path
//!   guards it behind one relaxed load when disabled.
//!
//! The crate sits at the bottom of the dependency graph (only the
//! vendored serde pair below it) so `scissor_nn`, `scissor_serve` and
//! `scissor_router` can all feed the same registry without cycles; the
//! router assembles everything into one JSON document via
//! `Router::observability_snapshot()`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod profile;
mod registry;
mod trace;

pub use profile::{ProfileSnapshot, Profiler, StepProfile, StepSpec};
pub use registry::{
    Counter, Gauge, Histogram, HistogramValue, MetricValue, Registry, Snapshot, TextGauge,
    HIST_BUCKETS,
};
pub use trace::{SpanKind, SpanRecord, TraceId, TraceLog};
