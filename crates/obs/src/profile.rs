//! Per-step inference profiling: preallocated atomic slots the compiled
//! net's hot loop can record into without locks or allocation.

use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Serialize, Value};

/// Static description of one compiled step, captured once when the
/// profiler is built. `per_sample_bytes`/`fixed_bytes` reuse the tile
/// planner's working-set footprint model, so the profile can report the
/// bytes a step touches at any tile size without re-walking the net.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StepSpec {
    /// Step name (layer name from the net definition).
    pub name: String,
    /// Step kind label: `conv`, `lowrank_conv`, `linear`,
    /// `lowrank_linear`, `maxpool` or `relu`.
    pub kind: &'static str,
    /// Working-set bytes that scale with the number of samples in a tile.
    pub per_sample_bytes: u64,
    /// Working-set bytes independent of tile size (weights, bias).
    pub fixed_bytes: u64,
}

/// One step's live accumulation slots.
#[derive(Debug, Default)]
struct StepSlot {
    calls: AtomicU64,
    total_ns: AtomicU64,
    max_ns: AtomicU64,
}

/// An opt-in per-step profiler. All recording is relaxed atomics into
/// slots preallocated at construction, so the *enabled* path is
/// allocation-free; the disabled path never reaches this type at all
/// (the compiled net guards with one relaxed load).
#[derive(Debug)]
pub struct Profiler {
    specs: Vec<StepSpec>,
    slots: Vec<StepSlot>,
    forwards: AtomicU64,
    samples: AtomicU64,
    last_tile: AtomicU64,
}

impl Profiler {
    /// A profiler with one slot per step spec.
    pub fn new(specs: Vec<StepSpec>) -> Self {
        let slots = specs.iter().map(|_| StepSlot::default()).collect();
        Self {
            specs,
            slots,
            forwards: AtomicU64::new(0),
            samples: AtomicU64::new(0),
            last_tile: AtomicU64::new(0),
        }
    }

    /// Number of profiled steps.
    pub fn step_count(&self) -> usize {
        self.specs.len()
    }

    /// Records one forward pass over `tile` samples (the tile decision
    /// actually taken, which may be smaller than the configured tile for
    /// a short batch).
    // ordering: Relaxed — independent stat counters; no reader derives a
    // cross-field invariant, and the snapshot path tolerates tearing
    // between forwards/samples/last_tile by design.
    pub fn record_forward(&self, tile: usize) {
        self.forwards.fetch_add(1, Ordering::Relaxed);
        self.samples.fetch_add(tile as u64, Ordering::Relaxed);
        self.last_tile.store(tile as u64, Ordering::Relaxed);
    }

    /// Folds one step execution in. `idx` must be a valid step index;
    /// out-of-range records are ignored rather than panicking mid-inference.
    // ordering: Relaxed — per-slot stat accumulators (calls/total/max);
    // each is monotone and independently meaningful, so no
    // happens-before edge between them is required.
    pub fn record_step(&self, idx: usize, elapsed_ns: u64) {
        let Some(slot) = self.slots.get(idx) else { return };
        slot.calls.fetch_add(1, Ordering::Relaxed);
        slot.total_ns.fetch_add(elapsed_ns, Ordering::Relaxed);
        slot.max_ns.fetch_max(elapsed_ns, Ordering::Relaxed);
    }

    /// Zeroes every accumulator (step specs are static and kept).
    // ordering: Relaxed — zeroing stat counters; a concurrent recorder
    // may interleave with the reset (some of its increments survive,
    // some are wiped), which is acceptable for profiling data.
    pub fn reset(&self) {
        for slot in &self.slots {
            slot.calls.store(0, Ordering::Relaxed);
            slot.total_ns.store(0, Ordering::Relaxed);
            slot.max_ns.store(0, Ordering::Relaxed);
        }
        self.forwards.store(0, Ordering::Relaxed);
        self.samples.store(0, Ordering::Relaxed);
        self.last_tile.store(0, Ordering::Relaxed);
    }

    /// An immutable copy of the current aggregates.
    // ordering: Relaxed — a statistical snapshot: loads may tear across
    // fields (a forward counted whose samples are not yet added), which
    // the consumers (reports, autoscaler hints) tolerate.
    pub fn snapshot(&self) -> ProfileSnapshot {
        let steps = self
            .specs
            .iter()
            .zip(&self.slots)
            .map(|(spec, slot)| StepProfile {
                name: spec.name.clone(),
                kind: spec.kind,
                calls: slot.calls.load(Ordering::Relaxed),
                total_ns: slot.total_ns.load(Ordering::Relaxed),
                max_ns: slot.max_ns.load(Ordering::Relaxed),
                per_sample_bytes: spec.per_sample_bytes,
                fixed_bytes: spec.fixed_bytes,
            })
            .collect();
        ProfileSnapshot {
            forwards: self.forwards.load(Ordering::Relaxed),
            samples: self.samples.load(Ordering::Relaxed),
            last_tile: self.last_tile.load(Ordering::Relaxed) as usize,
            steps,
        }
    }
}

/// One step's aggregates inside a [`ProfileSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StepProfile {
    /// Step name (layer name from the net definition).
    pub name: String,
    /// Step kind label (see [`StepSpec::kind`]).
    pub kind: &'static str,
    /// Times this step ran.
    pub calls: u64,
    /// Total wall nanoseconds across all calls.
    pub total_ns: u64,
    /// Slowest single call in nanoseconds.
    pub max_ns: u64,
    /// Working-set bytes that scale with tile size.
    pub per_sample_bytes: u64,
    /// Tile-independent working-set bytes.
    pub fixed_bytes: u64,
}

impl StepProfile {
    /// Mean nanoseconds per call (`0.0` when never called).
    pub fn mean_ns(&self) -> f64 {
        if self.calls == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.calls as f64
        }
    }

    /// Working-set bytes this step touches at a given tile size, per the
    /// tile planner's footprint model.
    pub fn working_set_bytes(&self, tile: usize) -> u64 {
        self.fixed_bytes + self.per_sample_bytes * tile as u64
    }
}

impl Serialize for StepProfile {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("name".to_string(), Value::Str(self.name.clone())),
            ("kind".to_string(), Value::Str(self.kind.to_string())),
            ("calls".to_string(), Value::U64(self.calls)),
            ("total_ns".to_string(), Value::U64(self.total_ns)),
            ("mean_ns".to_string(), Value::F64(self.mean_ns())),
            ("max_ns".to_string(), Value::U64(self.max_ns)),
            ("per_sample_bytes".to_string(), Value::U64(self.per_sample_bytes)),
            ("fixed_bytes".to_string(), Value::U64(self.fixed_bytes)),
        ])
    }
}

/// An immutable copy of a [`Profiler`] at sample time.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileSnapshot {
    /// Forward passes (tiles) recorded.
    pub forwards: u64,
    /// Total samples across all forwards.
    pub samples: u64,
    /// Tile size of the most recent forward.
    pub last_tile: usize,
    /// Per-step aggregates, in execution order.
    pub steps: Vec<StepProfile>,
}

impl ProfileSnapshot {
    /// Total wall nanoseconds across every step call.
    pub fn total_ns(&self) -> u64 {
        self.steps.iter().map(|s| s.total_ns).sum()
    }
}

impl Serialize for ProfileSnapshot {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("forwards".to_string(), Value::U64(self.forwards)),
            ("samples".to_string(), Value::U64(self.samples)),
            ("last_tile".to_string(), Value::U64(self.last_tile as u64)),
            ("total_ns".to_string(), Value::U64(self.total_ns())),
            ("steps".to_string(), Value::Seq(self.steps.iter().map(|s| s.to_value()).collect())),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_step() -> Profiler {
        Profiler::new(vec![
            StepSpec { name: "conv1".into(), kind: "conv", per_sample_bytes: 100, fixed_bytes: 40 },
            StepSpec { name: "relu1".into(), kind: "relu", per_sample_bytes: 8, fixed_bytes: 0 },
        ])
    }

    #[test]
    fn aggregates_accumulate_and_reset() {
        let p = two_step();
        assert_eq!(p.step_count(), 2);
        p.record_forward(4);
        p.record_step(0, 100);
        p.record_step(0, 300);
        p.record_step(1, 10);
        p.record_forward(2);
        let snap = p.snapshot();
        assert_eq!(snap.forwards, 2);
        assert_eq!(snap.samples, 6);
        assert_eq!(snap.last_tile, 2);
        assert_eq!(snap.steps[0].calls, 2);
        assert_eq!(snap.steps[0].total_ns, 400);
        assert_eq!(snap.steps[0].max_ns, 300);
        assert_eq!(snap.steps[0].mean_ns(), 200.0);
        assert_eq!(snap.steps[1].calls, 1);
        assert_eq!(snap.total_ns(), 410);
        p.reset();
        let snap = p.snapshot();
        assert_eq!(snap.forwards, 0);
        assert_eq!(snap.steps[0].calls, 0);
        assert_eq!(snap.steps[0].name, "conv1", "specs survive reset");
    }

    #[test]
    fn working_set_follows_the_footprint_model() {
        let p = two_step();
        let snap = p.snapshot();
        assert_eq!(snap.steps[0].working_set_bytes(0), 40);
        assert_eq!(snap.steps[0].working_set_bytes(8), 840);
        assert_eq!(snap.steps[1].working_set_bytes(8), 64);
    }

    #[test]
    fn out_of_range_records_are_ignored() {
        let p = two_step();
        p.record_step(99, 1);
        assert_eq!(p.snapshot().steps.iter().map(|s| s.calls).sum::<u64>(), 0);
    }

    #[test]
    fn snapshot_serializes_with_step_detail() {
        let p = two_step();
        p.record_forward(4);
        p.record_step(0, 250);
        let json = serde_json::to_string(&p.snapshot()).unwrap();
        for needle in
            ["\"forwards\":1", "\"name\":\"conv1\"", "\"kind\":\"conv\"", "\"total_ns\":250"]
        {
            assert!(json.contains(needle), "{needle} missing from {json}");
        }
    }
}
