//! Request tracing: ids minted at admission, span records appended as a
//! request moves queue → batch → execution.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use serde::{Serialize, Value};

/// A per-request identity, minted once at router admission and carried
/// through the ticket, the replica queue and the batcher so every span
/// of one request shares it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(u64);

impl TraceId {
    /// The raw id. Ids are sequential per [`TraceLog`], starting at 1.
    pub fn as_u64(&self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for TraceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// The lifecycle stage a [`SpanRecord`] marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// Admitted into a replica's queue. A request rerouted by a
    /// scale-down gets a second `Queued` span on its new replica.
    Queued,
    /// Drained from the queue into a batch (timestamped at batch start).
    Batched,
    /// Inference finished and the ticket was filled.
    Executed,
}

impl SpanKind {
    /// Stable lowercase label used in JSON and log output.
    pub fn label(&self) -> &'static str {
        match self {
            SpanKind::Queued => "queued",
            SpanKind::Batched => "batched",
            SpanKind::Executed => "executed",
        }
    }
}

impl std::fmt::Display for SpanKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One event in a request's lifecycle. Timestamps are whatever `Clock`
/// the producer runs on — wall nanoseconds in production, exact virtual
/// time under `VirtualClock` tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// The request this span belongs to.
    pub trace: TraceId,
    /// Which lifecycle stage this marks.
    pub kind: SpanKind,
    /// Clock reading when the stage happened, in nanoseconds.
    pub at_ns: u64,
    /// Replica that held the request at this stage.
    pub replica: u64,
    /// Batch size at this stage (0 for `Queued` — not yet batched).
    pub batch: usize,
    /// Serving form label of the executing replica (e.g. `dense`, `int8`).
    pub form: Arc<str>,
}

impl Serialize for SpanRecord {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("trace".to_string(), Value::U64(self.trace.0)),
            ("kind".to_string(), Value::Str(self.kind.label().to_string())),
            ("at_ns".to_string(), Value::U64(self.at_ns)),
            ("replica".to_string(), Value::U64(self.replica)),
            ("batch".to_string(), Value::U64(self.batch as u64)),
            ("form".to_string(), Value::Str(self.form.to_string())),
        ])
    }
}

/// A bounded, shared span sink. Producers check [`TraceLog::is_enabled`]
/// (one relaxed load) before building a span, and [`TraceLog::record`]
/// re-checks, so a disabled log costs nothing but that load. When the
/// ring is full the *oldest* span is dropped and counted — recent
/// history wins, and the drop is visible in the snapshot.
#[derive(Debug)]
pub struct TraceLog {
    enabled: AtomicBool,
    next_id: AtomicU64,
    cap: usize,
    spans: Mutex<VecDeque<SpanRecord>>,
    recorded: AtomicU64,
    dropped: AtomicU64,
}

impl TraceLog {
    /// A disabled log retaining at most `cap` spans (min 1).
    pub fn new(cap: usize) -> Self {
        let cap = cap.max(1);
        Self {
            enabled: AtomicBool::new(false),
            next_id: AtomicU64::new(0),
            cap,
            spans: Mutex::new(VecDeque::with_capacity(cap.min(1024))),
            recorded: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Starts recording spans.
    // ordering: Relaxed — the enabled flag is advisory: a producer that
    // misses the toggle for a few loads records (or skips) a handful of
    // spans, which the sampling semantics allow. Span data itself is
    // published under the `spans` mutex, not through this flag.
    pub fn enable(&self) {
        self.enabled.store(true, Ordering::Relaxed);
    }

    /// Stops recording spans (already-retained spans stay readable).
    // ordering: Relaxed — see `enable`; the flag is advisory.
    pub fn disable(&self) {
        self.enabled.store(false, Ordering::Relaxed);
    }

    /// Whether spans are currently recorded — the one-relaxed-load guard
    /// producers use to skip span construction entirely.
    // ordering: Relaxed — see `enable`; the flag is advisory.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Mints the next sequential [`TraceId`]. Ids are minted even while
    /// disabled so a request admitted just before `enable()` still has a
    /// stable identity.
    pub fn mint(&self) -> TraceId {
        // ordering: Relaxed — uniqueness comes from the atomic RMW
        // itself; no other memory is published with the id.
        TraceId(self.next_id.fetch_add(1, Ordering::Relaxed) + 1)
    }

    /// Appends a span if enabled; evicts the oldest span when full.
    // ordering: Relaxed — recorded/dropped are stat counters; the span
    // payload is synchronized by the `spans` mutex held here.
    pub fn record(&self, span: SpanRecord) {
        if !self.is_enabled() {
            return;
        }
        let mut spans = self.spans.lock().expect("trace log poisoned");
        if spans.len() == self.cap {
            spans.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        spans.push_back(span);
        self.recorded.fetch_add(1, Ordering::Relaxed);
    }

    /// All retained spans, oldest first.
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.spans.lock().expect("trace log poisoned").iter().cloned().collect()
    }

    /// Removes and returns all retained spans, oldest first.
    pub fn drain(&self) -> Vec<SpanRecord> {
        self.spans.lock().expect("trace log poisoned").drain(..).collect()
    }

    /// Total ids handed out by [`TraceLog::mint`].
    // ordering: Relaxed — stat counter read; may lag in-flight mints.
    pub fn minted(&self) -> u64 {
        self.next_id.load(Ordering::Relaxed)
    }

    /// Total spans accepted (including ones since evicted).
    // ordering: Relaxed — stat counter read; may lag in-flight records.
    pub fn recorded(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }

    /// Spans evicted because the ring was full.
    // ordering: Relaxed — stat counter read; may lag in-flight evictions.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Maximum spans retained.
    pub fn capacity(&self) -> usize {
        self.cap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(log: &TraceLog, id: TraceId, kind: SpanKind, at_ns: u64) -> SpanRecord {
        let _ = log;
        SpanRecord { trace: id, kind, at_ns, replica: 0, batch: 1, form: Arc::from("dense") }
    }

    #[test]
    fn ids_are_sequential_and_spans_ordered() {
        let log = TraceLog::new(16);
        log.enable();
        let a = log.mint();
        let b = log.mint();
        assert_eq!(a.as_u64(), 1);
        assert_eq!(b.as_u64(), 2);
        assert_eq!(log.minted(), 2);
        log.record(span(&log, a, SpanKind::Queued, 10));
        log.record(span(&log, a, SpanKind::Batched, 20));
        log.record(span(&log, a, SpanKind::Executed, 30));
        let spans = log.spans();
        assert_eq!(spans.len(), 3);
        assert_eq!(
            spans.iter().map(|s| s.kind).collect::<Vec<_>>(),
            vec![SpanKind::Queued, SpanKind::Batched, SpanKind::Executed]
        );
        assert!(spans.windows(2).all(|w| w[0].at_ns <= w[1].at_ns));
        assert_eq!(format!("{a}"), "t1");
        assert_eq!(format!("{}", SpanKind::Batched), "batched");
    }

    #[test]
    fn disabled_log_records_nothing_but_still_mints() {
        let log = TraceLog::new(4);
        assert!(!log.is_enabled());
        let id = log.mint();
        log.record(span(&log, id, SpanKind::Queued, 1));
        assert!(log.spans().is_empty());
        assert_eq!(log.recorded(), 0);
        assert_eq!(log.minted(), 1);
        log.enable();
        log.record(span(&log, id, SpanKind::Queued, 2));
        assert_eq!(log.recorded(), 1);
        log.disable();
        log.record(span(&log, id, SpanKind::Executed, 3));
        assert_eq!(log.spans().len(), 1, "disable stops recording, keeps history");
    }

    #[test]
    fn full_ring_drops_oldest_and_counts() {
        let log = TraceLog::new(2);
        log.enable();
        let id = log.mint();
        for t in 1..=3u64 {
            log.record(span(&log, id, SpanKind::Queued, t));
        }
        let spans = log.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].at_ns, 2, "oldest span evicted first");
        assert_eq!(spans[1].at_ns, 3);
        assert_eq!(log.recorded(), 3);
        assert_eq!(log.dropped(), 1);
        assert_eq!(log.capacity(), 2);
        let drained = log.drain();
        assert_eq!(drained.len(), 2);
        assert!(log.spans().is_empty());
    }

    #[test]
    fn spans_serialize_with_stable_field_names() {
        let log = TraceLog::new(4);
        let id = log.mint();
        let s = span(&log, id, SpanKind::Executed, 99);
        let json = serde_json::to_string(&s).unwrap();
        for needle in ["\"trace\":1", "\"kind\":\"executed\"", "\"at_ns\":99", "\"form\":\"dense\""]
        {
            assert!(json.contains(needle), "{needle} missing from {json}");
        }
    }
}
