//! The lock-free metrics registry: named counters, gauges and log₂
//! histograms registered once and sampled as immutable snapshots.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use serde::{Serialize, Value};

/// Number of histogram buckets: one per possible bit length of a `u64`
/// value (bucket 0 counts exact zeros), so any nanosecond/byte/count
/// observation lands without range configuration. Generalizes the
/// 40-bucket latency histogram in `scissor_serve::stats` to the full
/// `u64` range.
pub const HIST_BUCKETS: usize = 64;

/// Maps a value to its histogram bucket (its bit length, clamped).
fn hist_bucket(v: u64) -> usize {
    ((u64::BITS - v.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
}

/// A monotonically increasing event count. Clone-cheap handle; updates
/// are relaxed atomics (lock-free, allocation-free).
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A counter not (yet) attached to a registry — useful as a struct
    /// field that may later be registered via [`Registry::attach_counter`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    // ordering: Relaxed — a monotone event counter; scrapes only need an
    // eventually-consistent total, never a happens-before edge.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    // ordering: Relaxed — see `add`; a scrape may lag in-flight bumps.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins instantaneous value (queue depth, chosen tile,
/// enabled flag). Clone-cheap handle; updates are relaxed atomics.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// A gauge not (yet) attached to a registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the value.
    // ordering: Relaxed — last-write-wins instantaneous value; the gauge
    // carries no payload another location must observe first.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    // ordering: Relaxed — see `set`; readers accept any recent value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins string value (e.g. the supervisor's most recent
/// decision reason). The **one documented exception** to the registry's
/// lock-freedom: updates take a mutex, so keep these off hot paths.
#[derive(Clone, Debug, Default)]
pub struct TextGauge(Arc<Mutex<String>>);

impl TextGauge {
    /// An empty text gauge.
    pub fn new() -> Self {
        Self::default()
    }

    /// Replaces the value.
    pub fn set(&self, s: impl Into<String>) {
        *self.0.lock().expect("text gauge poisoned") = s.into();
    }

    /// Current value (cloned).
    pub fn get(&self) -> String {
        self.0.lock().expect("text gauge poisoned").clone()
    }
}

/// Atomic storage behind a [`Histogram`] handle.
struct HistogramInner {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

/// A log₂-bucket distribution: bucket `i > 0` counts observations with
/// bit length `i` (range `[2^(i-1), 2^i)`), bucket 0 exact zeros, the
/// top bucket everything from `2^62` up. Clone-cheap handle; recording
/// is four relaxed atomic operations, no locks, no allocation.
#[derive(Clone)]
pub struct Histogram(Arc<HistogramInner>);

impl Default for Histogram {
    fn default() -> Self {
        Self(Arc::new(HistogramInner {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }))
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram").field("count", &self.value().count).finish()
    }
}

impl Histogram {
    /// An empty histogram not (yet) attached to a registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one observation in.
    // ordering: Relaxed — bucket/count/sum/max are independent stat
    // accumulators; a scrape may see the bucket bump before the count
    // bump (off-by-one across fields), which histogram consumers accept.
    pub fn record(&self, v: u64) {
        let inner = &*self.0;
        inner.buckets[hist_bucket(v)].fetch_add(1, Ordering::Relaxed);
        inner.count.fetch_add(1, Ordering::Relaxed);
        inner.sum.fetch_add(v, Ordering::Relaxed);
        inner.max.fetch_max(v, Ordering::Relaxed);
    }

    /// An immutable copy of the current distribution.
    // ordering: Relaxed — statistical snapshot; tearing between fields
    // is tolerated (see `record`).
    pub fn value(&self) -> HistogramValue {
        let inner = &*self.0;
        HistogramValue {
            count: inner.count.load(Ordering::Relaxed),
            sum: inner.sum.load(Ordering::Relaxed),
            max: inner.max.load(Ordering::Relaxed),
            buckets: std::array::from_fn(|i| inner.buckets[i].load(Ordering::Relaxed)),
        }
    }
}

/// An immutable copy of a [`Histogram`] at sample time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramValue {
    /// Observations recorded.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Largest observed value. Cumulative — see [`HistogramValue::delta_since`].
    pub max: u64,
    /// Per-bucket counts; see [`HistogramValue::bucket_upper`] for bounds.
    pub buckets: [u64; HIST_BUCKETS],
}

impl HistogramValue {
    /// An all-zero distribution.
    pub fn zero() -> Self {
        Self { count: 0, sum: 0, max: 0, buckets: [0; HIST_BUCKETS] }
    }

    /// The exclusive upper bound of bucket `i`, or `None` for the
    /// unbounded top bucket. Bucket 0 holds exact zeros (bound 1);
    /// bucket `i` holds `[2^(i-1), 2^i)`.
    pub fn bucket_upper(i: usize) -> Option<u64> {
        if i >= HIST_BUCKETS - 1 {
            None
        } else if i == 0 {
            Some(1)
        } else {
            Some(1u64 << i)
        }
    }

    /// Mean observed value (`0.0` when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The quantile `q ∈ [0, 1]` read off the buckets, reported as the
    /// containing bucket's upper bound clamped to the observed max — and
    /// as exactly the observed max for the unbounded top bucket (never a
    /// fabricated bound). `0` when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return match Self::bucket_upper(i) {
                    Some(upper) => upper.min(self.max),
                    None => self.max,
                };
            }
        }
        self.max
    }

    /// The distribution accumulated since `earlier` (a previous value of
    /// the *same* histogram): bucket counts, `count` and `sum` subtract
    /// (saturating, so a mismatched baseline degrades to zeros instead
    /// of wrapping). `max` is kept from `self` — the atomic max is
    /// cumulative and cannot be un-observed, which the caller should
    /// treat as "max since start", not "max this interval".
    pub fn delta_since(&self, earlier: &HistogramValue) -> HistogramValue {
        HistogramValue {
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
            max: self.max,
            buckets: std::array::from_fn(|i| self.buckets[i].saturating_sub(earlier.buckets[i])),
        }
    }
}

impl Serialize for HistogramValue {
    fn to_value(&self) -> Value {
        // Sparse bucket encoding: only non-empty buckets, each with its
        // bounds, so a 64-bucket histogram serializes in proportion to
        // its occupancy.
        let buckets: Vec<Value> = self
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| {
                let lower = if i <= 1 { 0 } else { 1u64 << (i - 1) };
                let upper = match Self::bucket_upper(i) {
                    Some(u) => Value::U64(u),
                    None => Value::Null,
                };
                Value::Map(vec![
                    ("lower".to_string(), Value::U64(lower)),
                    ("upper".to_string(), upper),
                    ("count".to_string(), Value::U64(n)),
                ])
            })
            .collect();
        Value::Map(vec![
            ("count".to_string(), Value::U64(self.count)),
            ("sum".to_string(), Value::U64(self.sum)),
            ("max".to_string(), Value::U64(self.max)),
            ("mean".to_string(), Value::F64(self.mean())),
            ("p50".to_string(), Value::U64(self.quantile(0.50))),
            ("p99".to_string(), Value::U64(self.quantile(0.99))),
            ("p999".to_string(), Value::U64(self.quantile(0.999))),
            ("buckets".to_string(), Value::Seq(buckets)),
        ])
    }
}

/// One metric's value inside a [`Snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// A [`Counter`] reading.
    Counter(u64),
    /// A [`Gauge`] reading.
    Gauge(u64),
    /// A [`TextGauge`] reading.
    Text(String),
    /// A [`Histogram`] reading. Boxed: the bucket array dwarfs the
    /// scalar variants, and snapshots move these values around a lot.
    Histogram(Box<HistogramValue>),
}

impl MetricValue {
    /// The numeric reading for counters and gauges, `None` otherwise.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            MetricValue::Counter(v) | MetricValue::Gauge(v) => Some(*v),
            _ => None,
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            MetricValue::Counter(_) => "counter",
            MetricValue::Gauge(_) => "gauge",
            MetricValue::Text(_) => "text",
            MetricValue::Histogram(_) => "histogram",
        }
    }
}

impl Serialize for MetricValue {
    fn to_value(&self) -> Value {
        match self {
            MetricValue::Counter(v) | MetricValue::Gauge(v) => Value::U64(*v),
            MetricValue::Text(s) => Value::Str(s.clone()),
            MetricValue::Histogram(h) => h.to_value(),
        }
    }
}

/// Live registered metric handles.
#[derive(Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Text(TextGauge),
    Histogram(Histogram),
}

impl Metric {
    fn sample(&self) -> MetricValue {
        match self {
            Metric::Counter(c) => MetricValue::Counter(c.get()),
            Metric::Gauge(g) => MetricValue::Gauge(g.get()),
            Metric::Text(t) => MetricValue::Text(t.get()),
            Metric::Histogram(h) => MetricValue::Histogram(Box::new(h.value())),
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Text(_) => "text",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// The metrics registry: a name → metric map behind a mutex that is
/// touched only at registration and snapshot time. Handles returned by
/// the `counter`/`gauge`/`histogram` accessors are `Arc`'d atomics, so
/// producers update without locks, allocation or registry access.
///
/// Accessors are *get-or-register*: the first call under a name creates
/// the metric, later calls return a handle to the same cell — so many
/// producers can share one series without coordination.
///
/// # Examples
///
/// ```
/// use scissor_obs::Registry;
///
/// let reg = Registry::new();
/// let served = reg.counter("serve.requests");
/// served.inc();
/// served.add(2);
/// reg.gauge("serve.queue_depth").set(5);
/// reg.histogram("serve.latency_ns").record(1_500);
///
/// let snap = reg.snapshot();
/// assert_eq!(snap.get("serve.requests").and_then(|m| m.as_u64()), Some(3));
/// let json = serde_json::to_string(&snap).unwrap();
/// assert!(json.contains("serve.queue_depth"));
/// ```
#[derive(Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Registry({} metrics)", self.len())
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.metrics.lock().expect("metrics registry poisoned").len()
    }

    /// Whether no metric has been registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn register(&self, name: &str, make: impl FnOnce() -> Metric) -> Metric {
        let mut metrics = self.metrics.lock().expect("metrics registry poisoned");
        metrics.entry(name.to_string()).or_insert_with(make).clone()
    }

    /// The counter registered under `name`, creating it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind
    /// — a name means one series, and silently returning a fresh cell
    /// would fork it.
    pub fn counter(&self, name: &str) -> Counter {
        match self.register(name, || Metric::Counter(Counter::new())) {
            Metric::Counter(c) => c,
            other => panic!("metric `{name}` is a {}, not a counter", other.kind()),
        }
    }

    /// The gauge registered under `name`, creating it on first use.
    ///
    /// # Panics
    ///
    /// Panics on a metric-kind conflict (see [`Registry::counter`]).
    pub fn gauge(&self, name: &str) -> Gauge {
        match self.register(name, || Metric::Gauge(Gauge::new())) {
            Metric::Gauge(g) => g,
            other => panic!("metric `{name}` is a {}, not a gauge", other.kind()),
        }
    }

    /// The text gauge registered under `name`, creating it on first use.
    ///
    /// # Panics
    ///
    /// Panics on a metric-kind conflict (see [`Registry::counter`]).
    pub fn text(&self, name: &str) -> TextGauge {
        match self.register(name, || Metric::Text(TextGauge::new())) {
            Metric::Text(t) => t,
            other => panic!("metric `{name}` is a {}, not a text gauge", other.kind()),
        }
    }

    /// The histogram registered under `name`, creating it on first use.
    ///
    /// # Panics
    ///
    /// Panics on a metric-kind conflict (see [`Registry::counter`]).
    pub fn histogram(&self, name: &str) -> Histogram {
        match self.register(name, || Metric::Histogram(Histogram::new())) {
            Metric::Histogram(h) => h,
            other => panic!("metric `{name}` is a {}, not a histogram", other.kind()),
        }
    }

    /// Registers an existing counter handle under `name` (for producers
    /// that create their counters before a registry exists).
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered.
    pub fn attach_counter(&self, name: &str, counter: Counter) {
        let mut metrics = self.metrics.lock().expect("metrics registry poisoned");
        let prev = metrics.insert(name.to_string(), Metric::Counter(counter));
        assert!(prev.is_none(), "metric `{name}` registered twice");
    }

    /// Samples every metric into an immutable, name-sorted [`Snapshot`].
    /// Metrics are read individually with relaxed loads, so a snapshot
    /// taken under concurrent traffic can tear by a few in-flight events
    /// — same contract as `ServeStats`.
    pub fn snapshot(&self) -> Snapshot {
        let metrics = self.metrics.lock().expect("metrics registry poisoned");
        Snapshot { entries: metrics.iter().map(|(name, m)| (name.clone(), m.sample())).collect() }
    }
}

/// An immutable, name-sorted sample of every metric in a [`Registry`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    entries: BTreeMap<String, MetricValue>,
}

impl Snapshot {
    /// The sampled value of `name`, if registered at sample time.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.entries.get(name)
    }

    /// Iterates `(name, value)` in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &MetricValue)> {
        self.entries.iter().map(|(n, v)| (n.as_str(), v))
    }

    /// Number of sampled metrics.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the snapshot is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The change since `earlier` (a previous snapshot of the *same*
    /// registry): counters and histograms subtract (saturating), gauges
    /// and text keep their current reading (an instantaneous value has
    /// no meaningful difference). Metrics registered after `earlier`
    /// appear with their full value.
    pub fn delta_since(&self, earlier: &Snapshot) -> Snapshot {
        let entries = self
            .entries
            .iter()
            .map(|(name, v)| {
                let dv = match (v, earlier.entries.get(name)) {
                    (MetricValue::Counter(now), Some(MetricValue::Counter(then))) => {
                        MetricValue::Counter(now.saturating_sub(*then))
                    }
                    (MetricValue::Histogram(now), Some(MetricValue::Histogram(then))) => {
                        MetricValue::Histogram(Box::new(now.delta_since(then)))
                    }
                    _ => v.clone(),
                };
                (name.clone(), dv)
            })
            .collect();
        Snapshot { entries }
    }

    /// Renders the snapshot as an aligned three-column text table
    /// (`name  kind  value`), histograms summarized as
    /// `count/mean/p50/p99/p999/max`.
    pub fn render_table(&self) -> String {
        let name_w = self.entries.keys().map(String::len).max().unwrap_or(4).max(4);
        let mut out = String::new();
        let _ = writeln!(out, "{:<name_w$}  {:<9}  value", "name", "kind");
        for (name, v) in &self.entries {
            let rendered = match v {
                MetricValue::Counter(n) | MetricValue::Gauge(n) => n.to_string(),
                MetricValue::Text(s) => format!("{s:?}"),
                MetricValue::Histogram(h) => format!(
                    "count={} mean={:.1} p50={} p99={} p999={} max={}",
                    h.count,
                    h.mean(),
                    h.quantile(0.50),
                    h.quantile(0.99),
                    h.quantile(0.999),
                    h.max
                ),
            };
            let _ = writeln!(out, "{name:<name_w$}  {:<9}  {rendered}", v.kind());
        }
        out
    }
}

impl Serialize for Snapshot {
    fn to_value(&self) -> Value {
        Value::Map(self.entries.iter().map(|(n, v)| (n.clone(), v.to_value())).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_and_text_round_trip() {
        let reg = Registry::new();
        let c = reg.counter("c");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Second accessor call returns a handle to the same cell.
        reg.counter("c").inc();
        assert_eq!(c.get(), 6);
        reg.gauge("g").set(9);
        reg.gauge("g").set(3);
        reg.text("t").set("hello");
        let snap = reg.snapshot();
        assert_eq!(snap.get("c"), Some(&MetricValue::Counter(6)));
        assert_eq!(snap.get("g"), Some(&MetricValue::Gauge(3)));
        assert_eq!(snap.get("t"), Some(&MetricValue::Text("hello".into())));
        assert_eq!(snap.len(), 3);
        assert!(!snap.is_empty());
        assert_eq!(reg.len(), 3);
    }

    #[test]
    #[should_panic(expected = "not a gauge")]
    fn kind_conflicts_panic_instead_of_forking_the_series() {
        let reg = Registry::new();
        reg.counter("x");
        reg.gauge("x");
    }

    #[test]
    fn attach_counter_rejects_duplicates() {
        let reg = Registry::new();
        let c = Counter::new();
        c.add(7);
        reg.attach_counter("pre", c.clone());
        assert_eq!(reg.snapshot().get("pre"), Some(&MetricValue::Counter(7)));
        let dup = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            reg.attach_counter("pre", Counter::new());
        }));
        assert!(dup.is_err(), "re-registering a name must panic");
    }

    #[test]
    fn histogram_buckets_are_log2_with_true_bounds() {
        assert_eq!(hist_bucket(0), 0);
        assert_eq!(hist_bucket(1), 1);
        assert_eq!(hist_bucket(2), 2);
        assert_eq!(hist_bucket(3), 2);
        assert_eq!(hist_bucket(4), 3);
        assert_eq!(hist_bucket(u64::MAX), HIST_BUCKETS - 1);
        assert_eq!(HistogramValue::bucket_upper(0), Some(1));
        assert_eq!(HistogramValue::bucket_upper(3), Some(8));
        assert_eq!(HistogramValue::bucket_upper(HIST_BUCKETS - 1), None);
    }

    #[test]
    fn histogram_quantiles_clamp_to_observed_max() {
        let h = Histogram::new();
        for _ in 0..99 {
            h.record(1_000);
        }
        // One extreme outlier in the unbounded top bucket: its quantile
        // must report the *observed* max, not a fabricated 2^63 bound.
        h.record(1u64 << 63);
        let v = h.value();
        assert_eq!(v.count, 100);
        assert_eq!(v.quantile(0.5), 1_024);
        assert_eq!(v.quantile(1.0), 1u64 << 63);
        assert_eq!(v.max, 1u64 << 63);
        assert!(v.mean() > 0.0);
        // Empty histogram: all zeros.
        assert_eq!(HistogramValue::zero().quantile(0.99), 0);
    }

    #[test]
    fn snapshot_delta_subtracts_counters_and_histograms_keeps_gauges() {
        let reg = Registry::new();
        let c = reg.counter("c");
        let g = reg.gauge("g");
        let h = reg.histogram("h");
        c.add(10);
        g.set(100);
        h.record(8);
        h.record(8);
        let before = reg.snapshot();
        c.add(5);
        g.set(42);
        h.record(16);
        let delta = reg.snapshot().delta_since(&before);
        assert_eq!(delta.get("c"), Some(&MetricValue::Counter(5)));
        assert_eq!(delta.get("g"), Some(&MetricValue::Gauge(42)), "gauges keep current value");
        match delta.get("h") {
            Some(MetricValue::Histogram(hv)) => {
                assert_eq!(hv.count, 1, "one new observation this interval");
                assert_eq!(hv.sum, 16);
                assert_eq!(hv.buckets[hist_bucket(16)], 1);
                assert_eq!(hv.buckets[hist_bucket(8)], 0);
            }
            other => panic!("expected histogram delta, got {other:?}"),
        }
        // A metric registered after the baseline appears whole.
        reg.counter("late").add(3);
        let delta2 = reg.snapshot().delta_since(&before);
        assert_eq!(delta2.get("late"), Some(&MetricValue::Counter(3)));
    }

    #[test]
    fn snapshot_serializes_to_json_and_renders_a_table() {
        let reg = Registry::new();
        reg.counter("serve.requests").add(3);
        reg.gauge("serve.depth").set(1);
        reg.text("ctrl.reason").set("steady");
        reg.histogram("lat").record(100);
        let snap = reg.snapshot();
        let json = serde_json::to_string(&snap.to_value()).unwrap();
        assert!(json.contains("\"serve.requests\":3"), "{json}");
        assert!(json.contains("\"ctrl.reason\":\"steady\""), "{json}");
        assert!(json.contains("\"p999\""), "{json}");
        let table = snap.render_table();
        assert!(table.contains("serve.requests"));
        assert!(table.contains("counter"));
        assert!(table.contains("count=1"), "{table}");
        // Aligned: every line has the kind column at the same offset.
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 5, "header + 4 metrics");
    }

    #[test]
    fn concurrent_updates_are_not_lost() {
        let reg = std::sync::Arc::new(Registry::new());
        let c = reg.counter("hits");
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(reg.snapshot().get("hits").and_then(|m| m.as_u64()), Some(40_000));
    }
}
