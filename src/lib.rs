//! # group-scissor-repro
//!
//! Workspace facade for the reproduction of **Group Scissor: Scaling
//! Neuromorphic Computing Design to Large Neural Networks** (DAC 2017).
//!
//! This crate re-exports the workspace's public surface so the examples and
//! integration tests in the repository root can `use group_scissor_repro::…`
//! without naming individual crates. Library users should depend on the
//! individual crates directly:
//!
//! | crate | provides |
//! |---|---|
//! | [`linalg`] | matrices, matmul kernels, eig/SVD/PCA, low-rank factors |
//! | [`nn`] | CPU training framework with low-rank layers |
//! | [`data`] | synthetic MNIST/CIFAR stand-ins, IDX parsing |
//! | [`lra`] | rank clipping (paper step 1) |
//! | [`prune`] | group connection deletion (paper step 2) |
//! | [`ncs`] | memristor-crossbar area/routing hardware model |
//! | [`pipeline`] | model zoo + end-to-end orchestration |
//! | [`serve`] | micro-batching inference replicas over compiled plans |
//! | [`router`] | sharded multi-model, multi-replica serving router |
//! | [`obs`] | metrics registry, request tracing, per-step profiling |

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use group_scissor as pipeline;
pub use scissor_data as data;
pub use scissor_linalg as linalg;
pub use scissor_lra as lra;
pub use scissor_ncs as ncs;
pub use scissor_nn as nn;
pub use scissor_obs as obs;
pub use scissor_prune as prune;
pub use scissor_router as router;
pub use scissor_serve as serve;
