//! Observability tour: request tracing, per-step profiling and the
//! one-document JSON export, on a live routed workload.
//!
//! Builds the rank-clipped LeNet serving plan with per-step profiling
//! enabled, registers it on a [`Router`] with tracing on, runs an
//! open-loop burst, then prints:
//!
//! 1. the span log of one request's full lifecycle
//!    (`Queued → Batched → Executed` with clock timestamps);
//! 2. the per-step profile table — where inference time goes, and the
//!    working-set bytes each step touches at the served tile size;
//! 3. the metrics-registry table after the supervisor ran a few ticks;
//! 4. the whole `Router::observability_snapshot()` JSON document.
//!
//! ```text
//! cargo run --release --example observability
//! ```
//!
//! [`Router`]: group_scissor_repro::router::Router

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use group_scissor_repro::data::SynthOptions;
use group_scissor_repro::nn::CompiledNet;
use group_scissor_repro::pipeline::ModelKind;
use group_scissor_repro::router::control::{ControlConfig, Supervisor};
use group_scissor_repro::router::{ModelConfig, Router};

/// Builds the rank-clipped LeNet serving plan (paper Table 1 ranks).
fn clipped_lenet() -> Result<CompiledNet, Box<dyn std::error::Error>> {
    let model = ModelKind::LeNet;
    let mut rng = StdRng::seed_from_u64(7);
    let mut net = model.build(&mut rng);
    let ranks: Vec<(String, usize)> =
        model.paper_clipped_ranks().into_iter().map(|(n, k)| (n.to_string(), k)).collect();
    group_scissor_repro::lra::direct_lra(
        &mut net,
        &ranks,
        group_scissor_repro::lra::LraMethod::Pca,
    )?;
    Ok(net.compile()?)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let plan = Arc::new(clipped_lenet()?);
    let profiler = plan.enable_profiling(); // or launch with GS_OBS_PROFILE=1

    let router = Arc::new(Router::new());
    router.enable_tracing(); // or launch with GS_OBS_TRACE=1
    router.register_shared("lenet", Arc::clone(&plan), ModelConfig::with_replicas(2))?;

    // Open-loop burst: submit everything, then redeem out of order.
    let images = ModelKind::LeNet.dataset(48, 1, SynthOptions::default()).images().clone();
    let tickets: Vec<_> =
        (0..48).map(|s| router.submit("lenet", &images.gather(&[s]))).collect::<Result<_, _>>()?;
    println!("== burst: 48 requests over 2 replicas ==");
    for t in tickets {
        let _ = t.wait();
    }

    // 1. One request's lifecycle from the span log.
    let spans = router.trace_log().spans();
    let first = spans.first().expect("tracing was on").trace;
    println!("\n== spans of request {first} ==");
    for s in spans.iter().filter(|s| s.trace == first) {
        println!(
            "  {:<9} @ {:>12} ns   replica {}  batch {:>2}  form {}",
            s.kind.label(),
            s.at_ns,
            s.replica,
            s.batch,
            s.form
        );
    }
    let log = router.trace_log();
    println!(
        "log: minted {}, recorded {}, dropped {} (cap {})",
        log.minted(),
        log.recorded(),
        log.dropped(),
        log.capacity()
    );

    // 2. Per-step profile: time and working set per compiled step.
    let snap = profiler.snapshot();
    println!(
        "\n== per-step profile ({} forwards, {} samples, last tile {}) ==",
        snap.forwards, snap.samples, snap.last_tile
    );
    println!(
        "  {:<10} {:<13} {:>6} {:>12} {:>12} {:>14}",
        "step", "kind", "calls", "mean ns", "max ns", "ws @ tile"
    );
    for s in &snap.steps {
        println!(
            "  {:<10} {:<13} {:>6} {:>12.0} {:>12} {:>14}",
            s.name,
            s.kind,
            s.calls,
            s.mean_ns(),
            s.max_ns,
            s.working_set_bytes(snap.last_tile)
        );
    }

    // 3. A few supervisor ticks, then the registry as a text table.
    let mut sup = Supervisor::new(Arc::clone(&router), ControlConfig::default());
    for _ in 0..3 {
        sup.tick();
    }
    router.calibrate_tiles("lenet", 2)?;
    println!("\n== metrics registry ==");
    // Syncs the serve.*/pool.*/trace.* gauges as a side effect, so the
    // table below is current.
    let doc = router.observability_json();
    println!("{}", router.registry().snapshot().render_table());

    // 4. The whole document.
    println!("== observability_snapshot() ==");
    println!("{doc}");
    Ok(())
}
