//! Full ConvNet (CIFAR-10 quick) reproduction pipeline on synth-CIFAR.
//!
//! ```text
//! cargo run --release --example convnet_pipeline            # fast preset
//! cargo run --release --example convnet_pipeline -- --full  # paper-scale preset
//! GS_CIFAR_DIR=/data/cifar-10-batches-bin cargo run --release --example convnet_pipeline
//! ```
//!
//! `GS_CIFAR_DIR` opts into the real CIFAR-10 binary batches
//! (`data_batch_1.bin` … `data_batch_5.bin`, `test_batch.bin`); when unset
//! or the files are absent the run falls back to the synthetic stand-in.

use group_scissor_repro::pipeline::report::{pct, text_table};
use group_scissor_repro::pipeline::{run_pipeline_on, GroupScissorConfig, ModelKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let full = std::env::args().any(|a| a == "--full");
    let cfg = if full {
        GroupScissorConfig::full(ModelKind::ConvNet)
    } else {
        GroupScissorConfig::fast(ModelKind::ConvNet)
    };
    eprintln!(
        "running ConvNet pipeline ({} preset); this trains three conv layers on CPU — \
         expect minutes, not seconds",
        if full { "full" } else { "fast" }
    );
    if std::env::var_os("GS_MNIST_DIR").is_some() {
        eprintln!("GS_MNIST_DIR applies to the MNIST-input LeNet; set GS_CIFAR_DIR for ConvNet");
    }
    let (train, test, source) = cfg.datasets_from_env()?;
    eprintln!("data: {source} ({} train / {} test samples)", train.len(), test.len());

    let outcome = run_pipeline_on(&cfg, &train, &test)?;

    println!("== accuracy (Table 1 analogue) ==");
    let rows = vec![
        vec!["Original".to_string(), pct(outcome.baseline.final_accuracy)],
        vec!["Direct LRA".to_string(), pct(outcome.direct_lra_accuracy)],
        vec!["Rank clipping".to_string(), pct(outcome.clip.final_accuracy)],
        vec!["+ group deletion".to_string(), pct(outcome.deletion.final_accuracy)],
    ];
    println!("{}", text_table(&["method", "accuracy"], &rows));

    println!("== exported serving forms ==");
    println!(
        "{}: {} | {}: {} (delta {:+.2} pts, weights {} -> {} bytes)",
        outcome.compiled.serving_form(),
        pct(outcome.f32_accuracy),
        outcome.compiled_int8.serving_form(),
        pct(outcome.int8_accuracy),
        outcome.quant_accuracy_delta() * 100.0,
        outcome.compiled.resident_weight_bytes(),
        outcome.compiled_int8.resident_weight_bytes(),
    );
    println!();

    println!("== clipped ranks (paper: conv1 12, conv2 19, conv3 22) ==");
    let rank_rows: Vec<Vec<String>> = outcome
        .clip
        .layer_names
        .iter()
        .zip(outcome.clip.full_ranks.iter().zip(&outcome.clip.final_ranks))
        .map(|(n, (&full, &k))| vec![n.clone(), full.to_string(), k.to_string()])
        .collect();
    println!("{}", text_table(&["layer", "full rank", "clipped rank"], &rank_rows));

    println!("== crossbar area after rank clipping (paper: 51.81%) ==");
    println!("{}", outcome.area);
    println!();

    println!("== routing after group connection deletion (paper: 52.06% area) ==");
    for r in &outcome.deletion.routing {
        println!("{r}");
    }
    println!(
        "mean remained wires {} | mean remained routing area {}",
        pct(outcome.deletion.mean_wire_fraction()),
        pct(outcome.deletion.mean_area_fraction())
    );
    Ok(())
}
