//! Serve: batched inference over a compiled compressed network.
//!
//! Builds a rank-clipped LeNet (paper Table 1 ranks, random weights — the
//! serving data flow is identical to a trained checkpoint), freezes it into
//! a [`CompiledNet`], then contrasts three ways of answering the same 256
//! single-sample requests:
//!
//! 1. the training container's per-sample eval loop,
//! 2. a direct `CompiledNet` batch pass,
//! 3. concurrent callers through the `scissor_serve` micro-batcher.
//!
//! ```text
//! cargo run --release --example serve
//! ```
//!
//! [`CompiledNet`]: group_scissor_repro::nn::CompiledNet

use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;

use group_scissor_repro::data::SynthOptions;
use group_scissor_repro::nn::{InferScratch, Phase};
use group_scissor_repro::pipeline::ModelKind;
use group_scissor_repro::serve::{ServeConfig, Server};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = ModelKind::LeNet;
    let mut rng = StdRng::seed_from_u64(7);
    let mut net = model.build(&mut rng);

    // Compress to the paper's clipped ranks (random weights; the plan's
    // structure — two crossbars per clipped layer — is what matters here).
    let ranks: Vec<(String, usize)> =
        model.paper_clipped_ranks().into_iter().map(|(n, k)| (n.to_string(), k)).collect();
    group_scissor_repro::lra::direct_lra(
        &mut net,
        &ranks,
        group_scissor_repro::lra::LraMethod::Pca,
    )?;
    let plan = net.compile()?;
    println!("serving plan: {plan:?}");

    // 256 requests' worth of synthetic MNIST.
    let n = 256;
    let data = model.dataset(n, 1, SynthOptions::default());
    let images = data.images();

    // 1. Per-sample eval loop through the training container.
    let start = Instant::now();
    let mut per_sample_logits = Vec::with_capacity(n);
    for s in 0..n {
        let x = images.gather(&[s]);
        per_sample_logits.push(net.forward(&x, Phase::Eval));
    }
    let per_sample = start.elapsed();
    println!(
        "per-sample eval loop:   {per_sample:>10.2?}  ({:.0} samples/s)",
        n as f64 / per_sample.as_secs_f64()
    );

    // 2. Direct compiled batch passes at batch 32.
    let mut scratch = InferScratch::new();
    let batch = 32;
    let start = Instant::now();
    let mut batched_logits: Vec<f32> = Vec::with_capacity(n * 10);
    let mut s0 = 0;
    while s0 < n {
        let idx: Vec<usize> = (s0..(s0 + batch).min(n)).collect();
        let chunk = images.gather(&idx);
        batched_logits.extend_from_slice(plan.infer_into(&chunk, &mut scratch).as_slice());
        s0 += batch;
    }
    let batched = start.elapsed();
    println!(
        "compiled batch-{batch} pass: {batched:>10.2?}  ({:.0} samples/s, {:.2}x)",
        n as f64 / batched.as_secs_f64(),
        per_sample.as_secs_f64() / batched.as_secs_f64()
    );

    // The batched logits are bitwise identical to the per-sample loop.
    let flat_per_sample: Vec<f32> =
        per_sample_logits.iter().flat_map(|t| t.as_slice().to_vec()).collect();
    assert_eq!(flat_per_sample, batched_logits, "serving must not change a single bit");

    // 3. Concurrent callers through the micro-batching server.
    let server = Arc::new(Server::start(
        net.compile()?,
        ServeConfig {
            max_batch: batch,
            max_wait: Duration::from_millis(2),
            workers: 1,
            ..ServeConfig::default()
        },
    ));
    let callers = 8;
    let start = Instant::now();
    let handles: Vec<_> = (0..callers)
        .map(|t| {
            let server = Arc::clone(&server);
            let images = images.clone();
            std::thread::spawn(move || {
                for s in (t..n).step_by(callers) {
                    let sample = images.gather(&[s]);
                    server.submit(&sample).expect("serve");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("caller thread");
    }
    let served = start.elapsed();
    let stats = server.stats();
    println!(
        "micro-batched serving:  {served:>10.2?}  ({:.0} samples/s end-to-end)",
        n as f64 / served.as_secs_f64()
    );
    println!(
        "  {} requests in {} batches (mean batch {:.1}, {} full / {} timeout)",
        stats.requests,
        stats.batches,
        stats.mean_batch_size(),
        stats.full_batches,
        stats.timeout_batches()
    );
    println!(
        "  latency mean {:.2?} / p50 {:.2?} / p95 {:.2?} / p99 {:.2?} / max {:.2?}",
        stats.mean_latency(),
        stats.p50_latency(),
        stats.p95_latency(),
        stats.p99_latency(),
        stats.max_latency
    );
    println!("  inference throughput {:.0} samples/s", stats.infer_throughput());
    Ok(())
}
