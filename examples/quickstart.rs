//! Quickstart: compress one weight matrix end-to-end.
//!
//! Takes a single LeNet-fc1-shaped weight matrix through both Group Scissor
//! steps *analytically* (no training) so the whole tour runs in
//! milliseconds: PCA rank selection → crossbar tiling → group zeroing →
//! area/routing report.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use group_scissor_repro::linalg::{Matrix, Pca};
use group_scissor_repro::ncs::{CrossbarSpec, GroupPartition, RoutingAnalysis, Tiling};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A synthetic 800×500 weight matrix with low intrinsic rank + noise,
    // the shape of LeNet's fc1.
    let rank = 24;
    let a = Matrix::from_fn(800, rank, |i, j| (((i * 31 + j * 17) % 23) as f32 - 11.0) * 0.05);
    let b = Matrix::from_fn(500, rank, |i, j| (((i * 13 + j * 29) % 19) as f32 - 9.0) * 0.06);
    let noise = Matrix::from_fn(800, 500, |i, j| (((i * 7 + j * 3) % 11) as f32 - 5.0) * 0.002);
    let w = a.matmul_nt(&b).add(&noise);
    println!("weight matrix: {}x{}", w.rows(), w.cols());

    // ---- Step 1: rank clipping (analytic core: PCA + Eq. 3) -------------
    let eps = 0.03; // tolerable clipping error
    let pca = Pca::fit(&w)?;
    let k = pca.min_rank_for_error(eps);
    let (u, v) = pca.factors(&w, k)?;
    let dense_cells = w.rows() * w.cols();
    let factored_cells = u.rows() * k + k * v.rows();
    println!(
        "rank clipping: K = {k} (ε = {eps}), crossbar cells {dense_cells} → {factored_cells} \
         ({:.2}% of dense)",
        100.0 * factored_cells as f64 / dense_cells as f64
    );

    // ---- Map U onto memristor crossbars (§4.2 criteria) ------------------
    let spec = CrossbarSpec::default(); // Table 2: 64×64 MBCs, 4F² cells
    let tiling = Tiling::plan(u.rows(), u.cols(), &spec)?;
    println!(
        "U maps to a {}x{} array of {} crossbars ({} wires)",
        tiling.grid().0,
        tiling.grid().1,
        tiling.mbc_size(),
        tiling.total_wires()
    );

    // ---- Step 2: group connection deletion (simulated) -------------------
    // Emulate what group-lasso training achieves: zero the weakest 60% of
    // crossbar row/column groups, then count surviving routing wires.
    let groups = GroupPartition::from_tiling(&tiling);
    let mut norms: Vec<f64> = groups.row_group_norms(&u);
    norms.extend(groups.col_group_norms(&u));
    norms.sort_by(|x, y| x.partial_cmp(y).expect("finite norms"));
    let threshold = norms[(norms.len() as f64 * 0.6) as usize];
    let mut u_deleted = u.clone();
    groups.zero_small_groups(&mut u_deleted, threshold);

    let routing = RoutingAnalysis::analyze("fc1_u", &u_deleted, &tiling, 0.0)?;
    println!("{routing}");
    println!(
        "routing area after deletion: {} of original (Eq. 8: area ∝ wires²)",
        group_scissor_repro::pipeline::report::pct(routing.remained_area_fraction())
    );
    Ok(())
}
