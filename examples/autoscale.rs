//! Autoscaling demo: a [`Supervisor`] control loop watching one model on
//! a [`Router`], scaling replicas up under sustained overload and back
//! down when the traffic goes away.
//!
//! The script:
//!
//! 1. registers a rank-clipped LeNet plan with a single replica and a
//!    64-deep admission bound, then spawns the supervisor on its own
//!    thread (`ControlConfig::from_env()` picks up any `GS_CTRL_*`
//!    overrides; the literal fields below tighten the loop so the demo
//!    finishes in milliseconds);
//! 2. manufactures an overload: pauses the replica and pours in 96
//!    open-loop submissions — the backlog pins the queue at its high
//!    water and the overflow sheds, which the supervisor reads as an
//!    overloaded streak and answers with `ScaleUp` (and, once at the
//!    replica ceiling, `ResizeHighWater`);
//! 3. resumes, redeems every admitted ticket, and spot-checks the
//!    results bit-for-bit against direct compiled inference — scaling
//!    actions never touch correctness;
//! 4. idles until the supervisor walks the capacity back down, then
//!    prints the full decision log with reasons.
//!
//! ```text
//! cargo run --release --example autoscale
//! ```
//!
//! [`Router`]: group_scissor_repro::router::Router
//! [`Supervisor`]: group_scissor_repro::router::control::Supervisor

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::SeedableRng;

use group_scissor_repro::data::SynthOptions;
use group_scissor_repro::nn::CompiledNet;
use group_scissor_repro::pipeline::ModelKind;
use group_scissor_repro::router::control::{ControlConfig, Supervisor};
use group_scissor_repro::router::{ModelConfig, Router, RouterError, ServeConfig};

/// Builds the rank-clipped serving plan (paper Table 1 ranks).
fn clipped_plan() -> Result<CompiledNet, Box<dyn std::error::Error>> {
    let model = ModelKind::LeNet;
    let mut rng = StdRng::seed_from_u64(7);
    let mut net = model.build(&mut rng);
    let ranks: Vec<(String, usize)> =
        model.paper_clipped_ranks().into_iter().map(|(n, k)| (n.to_string(), k)).collect();
    group_scissor_repro::lra::direct_lra(
        &mut net,
        &ranks,
        group_scissor_repro::lra::LraMethod::Pca,
    )?;
    Ok(net.compile()?)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let plan = Arc::new(clipped_plan()?);
    let router = Arc::new(Router::new());
    router.register_shared(
        "lenet",
        Arc::clone(&plan),
        ModelConfig {
            replicas: 1,
            queue_high_water: 64,
            replica: ServeConfig {
                max_batch: 32,
                max_wait: Duration::from_millis(1),
                ..ServeConfig::default()
            },
            ..ModelConfig::default()
        },
    )?;

    // Env first (`GS_CTRL_*` overrides apply), then tighten the loop so
    // the whole demo plays out in tens of milliseconds.
    let cfg = ControlConfig {
        interval: Duration::from_millis(2),
        up_streak: 2,
        down_streak: 5,
        cooldown_ticks: 1,
        max_replicas: 3,
        // Warm-up calibration runs real timed forwards, which would eat
        // this demo's tight timeline — it is driven explicitly below.
        calibrate_rounds: 0,
        ..ControlConfig::from_env()
    };
    println!("supervisor config: {cfg:?}\n");
    let stop = Arc::new(AtomicBool::new(false));
    let supervisor = Supervisor::new(Arc::clone(&router), cfg).spawn(Arc::clone(&stop));

    // Overload: park the replica and pour in more than the admission
    // bound. The backlog pins the queue at its high water; the overflow
    // sheds. Both signals read as "overloaded" to the supervisor.
    let n = 96;
    let images = Arc::new(ModelKind::LeNet.dataset(n, 1, SynthOptions::default()).images().clone());
    router.pause("lenet")?;
    let mut admitted = Vec::new();
    let mut shed = 0usize;
    for s in 0..n {
        match router.submit("lenet", &images.gather(&[s])) {
            Ok(ticket) => admitted.push((s, ticket)),
            Err(RouterError::Overloaded { .. }) => shed += 1,
            Err(e) => return Err(e.into()),
        }
    }
    println!("burst: admitted {} / shed {shed} of {n} open-loop submissions", admitted.len());
    std::thread::sleep(Duration::from_millis(40)); // let the streak build
    println!("under overload: {} replica(s)", router.replica_count("lenet").expect("registered"));

    // Drain: every admitted ticket is delivered, and scaling never
    // changes a single output bit.
    router.resume("lenet")?;
    let mut scratch = plan.warm_scratch(1);
    for (s, ticket) in admitted {
        let got = ticket.wait();
        let want = plan.infer_into(&images.gather(&[s]), &mut scratch);
        assert_eq!(got.as_slice(), want.row(0), "sample {s} bit-equal through scaling");
    }
    println!("all admitted tickets delivered, bit-equal to direct inference");

    // Idle: with the backlog gone and no fresh traffic, the supervisor
    // walks the capacity back down to the floor.
    std::thread::sleep(Duration::from_millis(60));
    println!("after idle: {} replica(s)\n", router.replica_count("lenet").expect("registered"));

    stop.store(true, Ordering::Release);
    let supervisor = supervisor.join().expect("supervisor thread");
    println!("== decision log (non-heartbeat) ==");
    for d in supervisor.actions() {
        println!("  t={:>9}ns {:<18} {}", d.at_ns, format!("{:?}", d.action), d.reason);
    }
    // Measured-adaptive tiles: time 2-3 candidate tiles on the live plan
    // and install the winner (bitwise-invariant, so safe at any time).
    let cal = router.calibrate_tiles("lenet", 2)?;
    println!("\ntile calibration over batch {}:", cal.batch);
    for t in &cal.timings {
        println!(
            "  tile {:>3}: best {:>9}ns{}",
            t.tile,
            t.best_ns,
            if t.tile == cal.chosen { "  <- chosen" } else { "" }
        );
    }
    assert_eq!(plan.tile_override(), Some(cal.chosen));

    let stats = router.model_stats("lenet").expect("registered");
    println!(
        "\nlenet: {} reqs in {} batches (mean {:.1}), shed {}, p50 {:.2?} / p99 {:.2?}",
        stats.serve.requests,
        stats.serve.batches,
        stats.serve.mean_batch_size(),
        stats.shed,
        stats.serve.p50_latency(),
        stats.serve.p99_latency(),
    );
    router.shutdown();
    println!("router drained and shut down");
    Ok(())
}
