//! Rank explorer: sweep the tolerable clipping error ε over a trained
//! LeNet layer and watch rank, reconstruction error and crossbar area move
//! (the analytic heart of the paper's Fig. 6).
//!
//! ```text
//! cargo run --release --example rank_explorer
//! ```

use group_scissor_repro::data::{synth_mnist, SynthOptions};
use group_scissor_repro::linalg::{max_beneficial_rank, Pca};
use group_scissor_repro::pipeline::report::{pct, text_table};
use group_scissor_repro::pipeline::{train_baseline, ModelKind, TrainConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Briefly train LeNet so the weight spectra are task-shaped, not random.
    eprintln!("pre-training LeNet for a few hundred iterations…");
    let mut rng = StdRng::seed_from_u64(7);
    let mut net = ModelKind::LeNet.build(&mut rng);
    let train = synth_mnist(1500, 1, SynthOptions::default());
    let test = synth_mnist(400, 2, SynthOptions::default());
    let out = train_baseline(&mut net, &train, &test, &TrainConfig::new(250));
    eprintln!("baseline accuracy: {}", pct(out.final_accuracy));

    for layer in ["conv1", "conv2", "fc1"] {
        let w = net.layer(layer).expect("zoo layer").weight_matrix().expect("dense").clone();
        let (n, m) = w.shape();
        let pca = Pca::fit(&w)?;
        let mut rows = Vec::new();
        for eps in [0.005, 0.01, 0.02, 0.03, 0.05, 0.1, 0.2] {
            let k = pca.min_rank_for_error(eps);
            let cells = n * k + k * m;
            rows.push(vec![
                format!("{eps}"),
                k.to_string(),
                format!("{:.4}", pca.reconstruction_error(k)),
                pct(cells as f64 / (n * m) as f64),
            ]);
        }
        println!(
            "== {layer} ({n}x{m}, full rank {m}, Eq. 2 bound K < {}) ==",
            max_beneficial_rank(n, m) + 1
        );
        println!("{}", text_table(&["ε", "rank K", "e_K (Eq. 3)", "crossbar area"], &rows));
    }
    Ok(())
}
