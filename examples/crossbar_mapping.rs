//! Crossbar mapping explorer: how arbitrary weight matrices land on MBC
//! arrays, plus a Fig. 9-style block map of a structurally-sparse matrix.
//!
//! ```text
//! cargo run --release --example crossbar_mapping            # paper shapes
//! cargo run --release --example crossbar_mapping -- 300 48  # your own N K
//! ```

use group_scissor_repro::linalg::Matrix;
use group_scissor_repro::ncs::{viz, CrossbarSpec, GroupPartition, RoutingAnalysis, Tiling};
use group_scissor_repro::pipeline::report::text_table;

fn describe(name: &str, n: usize, k: usize, spec: &CrossbarSpec) -> Vec<String> {
    let t = Tiling::plan(n, k, spec).expect("nonzero dims");
    vec![
        name.to_string(),
        format!("{n}x{k}"),
        t.mbc_size().to_string(),
        format!("{}x{}", t.grid().0, t.grid().1),
        t.crossbar_count().to_string(),
        t.total_wires().to_string(),
    ]
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = CrossbarSpec::default();
    let args: Vec<String> = std::env::args().skip(1).collect();

    println!("== MBC size selection (paper Table 3 shapes) ==");
    let mut rows = vec![
        describe("lenet conv2_u", 500, 12, &spec),
        describe("lenet fc1_u", 800, 36, &spec),
        describe("lenet fc1_v", 36, 500, &spec),
        describe("lenet fc2", 500, 10, &spec),
        describe("convnet conv1_u", 75, 12, &spec),
        describe("convnet conv2_u", 800, 19, &spec),
        describe("convnet conv3_u", 800, 22, &spec),
        describe("convnet fc1", 1024, 10, &spec),
    ];
    if let [n, k] = args.as_slice() {
        rows.push(describe("user matrix", n.parse()?, k.parse()?, &spec));
    }
    println!("{}", text_table(&["matrix", "shape", "MBC", "array", "crossbars", "wires"], &rows));

    // Fig. 9-style visualization: a 100×100 matrix with whole groups deleted.
    println!("== Fig. 9-style block map (white = deleted connections) ==");
    let tiling = Tiling::plan(100, 100, &spec)?;
    let groups = GroupPartition::from_tiling(&tiling);
    let mut w = Matrix::from_fn(100, 100, |i, j| (((i * 31 + j * 17) % 13) as f32 - 6.0) * 0.1);
    // Delete a deterministic pseudo-random 70% of groups.
    for (gi, g) in groups.row_groups().iter().enumerate() {
        if (gi * 2654435761) % 10 < 7 {
            g.zero(&mut w);
        }
    }
    for (gi, g) in groups.col_groups().iter().enumerate() {
        if (gi * 40503 + 7) % 10 < 4 {
            g.zero(&mut w);
        }
    }
    println!("{}", viz::render_ascii(&w, &tiling, 0.0, 100)?);
    let analysis = RoutingAnalysis::analyze("demo", &w, &tiling, 0.0)?;
    println!("{analysis}");
    println!(
        "compaction: {} of cells survive if each crossbar is re-packed dense \
         (the paper's closing observation)",
        group_scissor_repro::pipeline::report::pct(analysis.compaction_ratio())
    );

    // Write the PPM bitmap next to the binary for inspection.
    let ppm = viz::render_ppm(&w, &tiling, 0.0)?;
    let path = std::env::temp_dir().join("group_scissor_fig9.ppm");
    std::fs::write(&path, ppm)?;
    println!("bitmap written to {}", path.display());
    Ok(())
}
