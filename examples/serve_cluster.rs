//! Serve cluster: two compiled models × two replicas behind the
//! `scissor_router` front door, driven by open-loop traffic with
//! deliberate overload.
//!
//! Builds rank-clipped LeNet and ConvNet plans (paper Table 1 ranks,
//! random weights — the serving data flow is identical to trained
//! checkpoints), registers both on a [`Router`], then:
//!
//! 1. sprays async (non-blocking) requests at both models from several
//!    caller threads, redeeming tickets out of order;
//! 2. verifies a routed subset bit-for-bit against direct compiled passes;
//! 3. demonstrates backpressure: a paused model with a small admission
//!    bound sheds the overflow with `RouterError::Overloaded` instead of
//!    letting the backlog grow;
//! 4. drains everything on shutdown and prints the per-model stats
//!    (batches, queue depth, shed count, latency percentiles).
//!
//! ```text
//! cargo run --release --example serve_cluster
//! ```
//!
//! [`Router`]: group_scissor_repro::router::Router

use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;

use group_scissor_repro::data::SynthOptions;
use group_scissor_repro::nn::CompiledNet;
use group_scissor_repro::pipeline::ModelKind;
use group_scissor_repro::router::{ModelConfig, Router, RouterError, ServeConfig};

/// Builds the rank-clipped serving plan for a model (paper Table 1 ranks).
fn clipped_plan(model: ModelKind) -> Result<CompiledNet, Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(7);
    let mut net = model.build(&mut rng);
    let ranks: Vec<(String, usize)> =
        model.paper_clipped_ranks().into_iter().map(|(n, k)| (n.to_string(), k)).collect();
    group_scissor_repro::lra::direct_lra(
        &mut net,
        &ranks,
        group_scissor_repro::lra::LraMethod::Pca,
    )?;
    Ok(net.compile()?)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let lenet = Arc::new(clipped_plan(ModelKind::LeNet)?);
    let convnet = Arc::new(clipped_plan(ModelKind::ConvNet)?);
    println!("lenet plan:   {lenet:?}");
    println!("convnet plan: {convnet:?}");

    let router = Arc::new(Router::new());
    let cfg = ModelConfig {
        replicas: 2,
        queue_high_water: 256,
        replica: ServeConfig {
            max_batch: 32,
            max_wait: Duration::from_millis(2),
            ..ServeConfig::default()
        },
        ..ModelConfig::default()
    };
    router.register_shared("lenet", Arc::clone(&lenet), cfg)?;
    router.register_shared("convnet", Arc::clone(&convnet), cfg)?;
    println!("router: {router:?}\n");

    // Open-loop traffic: 4 callers × 64 requests per model, tickets
    // redeemed after both submissions (submit never blocks).
    let n = 256;
    let mnist = Arc::new(ModelKind::LeNet.dataset(n, 1, SynthOptions::default()).images().clone());
    let cifar =
        Arc::new(ModelKind::ConvNet.dataset(n, 2, SynthOptions::default()).images().clone());
    let callers = 4;
    let start = Instant::now();
    let handles: Vec<_> = (0..callers)
        .map(|t| {
            let router = Arc::clone(&router);
            let mnist = Arc::clone(&mnist);
            let cifar = Arc::clone(&cifar);
            std::thread::spawn(move || {
                let mut results = Vec::new();
                for s in (t..n).step_by(callers) {
                    let ta = router.submit("lenet", &mnist.gather(&[s])).expect("lenet admit");
                    let tb = router.submit("convnet", &cifar.gather(&[s])).expect("convnet admit");
                    results.push((s, ta.wait(), tb.wait()));
                }
                results
            })
        })
        .collect();
    let mut served = Vec::new();
    for h in handles {
        served.extend(h.join().expect("caller thread"));
    }
    let elapsed = start.elapsed();
    println!(
        "routed {} requests (2 models × {n} samples) in {elapsed:.2?} ({:.0} requests/s)",
        2 * n,
        (2 * n) as f64 / elapsed.as_secs_f64()
    );

    // Spot-check bit-equality against direct compiled passes.
    let mut scratch_a = lenet.warm_scratch(1);
    let mut scratch_b = convnet.warm_scratch(1);
    for (s, got_a, got_b) in &served {
        let want_a = lenet.infer_into(&mnist.gather(&[*s]), &mut scratch_a);
        assert_eq!(got_a.as_slice(), want_a.row(0), "lenet sample {s}");
        let want_b = convnet.infer_into(&cifar.gather(&[*s]), &mut scratch_b);
        assert_eq!(got_b.as_slice(), want_b.row(0), "convnet sample {s}");
    }
    println!("all routed logits bitwise identical to direct compiled inference\n");

    // Backpressure demo: bound a third registration tightly, pause its
    // replicas, and pour requests in until the admission gate sheds.
    router.register_shared(
        "lenet-canary",
        Arc::clone(&lenet),
        ModelConfig { replicas: 1, queue_high_water: 8, ..ModelConfig::default() },
    )?;
    router.pause("lenet-canary")?;
    let mut admitted = Vec::new();
    let mut shed = 0usize;
    for s in 0..32 {
        match router.submit("lenet-canary", &mnist.gather(&[s])) {
            Ok(ticket) => admitted.push(ticket),
            Err(RouterError::Overloaded { depth, high_water, .. }) => {
                if shed == 0 {
                    println!(
                        "canary shed begins at depth {depth} (high water {high_water}): \
                         RouterError::Overloaded"
                    );
                }
                shed += 1;
            }
            Err(e) => return Err(e.into()),
        }
    }
    println!("canary admitted {} / shed {shed} of 32 open-loop submissions", admitted.len());
    router.resume("lenet-canary")?;
    for t in admitted {
        t.wait(); // every admitted ticket is still delivered
    }
    println!("every admitted canary ticket delivered after resume\n");

    println!("== per-model stats ==");
    for (name, s) in router.stats() {
        println!(
            "{name:>14}: {} reqs in {} batches (mean {:.1}), shed {}, depth {}",
            s.serve.requests,
            s.serve.batches,
            s.serve.mean_batch_size(),
            s.shed,
            s.serve.queue_depth,
        );
        println!(
            "{:>14}  latency p50 {:.2?} / p95 {:.2?} / p99 {:.2?} / max {:.2?}; \
             infer throughput {:.0} samples/s",
            "",
            s.serve.p50_latency(),
            s.serve.p95_latency(),
            s.serve.p99_latency(),
            s.serve.max_latency,
            s.serve.infer_throughput()
        );
    }

    // Graceful drain: stops admission, delivers anything still queued,
    // joins every batcher thread (shutdown takes &self, so it works
    // through the Arc the caller threads shared).
    router.shutdown();
    println!("\nrouter drained and shut down");
    Ok(())
}
