//! Smoke tests: the `fast` preset configs for both models drive
//! `run_pipeline_on` end-to-end (baseline → rank clipping → group deletion
//! → hardware reports) without panicking.
//!
//! The iteration budgets are shrunk so the whole file stays CI-sized; the
//! configs are still built by `GroupScissorConfig::fast`, so every stage and
//! both model topologies are exercised exactly as in a full run.

use group_scissor_repro::pipeline::{run_pipeline_on, GroupScissorConfig, ModelKind, TrainConfig};

/// Shrinks a fast-preset config to smoke-test budgets without changing any
/// structural knob (layers, spec, λ, ε stay as `fast` chose them).
fn smoke_budget(mut cfg: GroupScissorConfig) -> GroupScissorConfig {
    cfg.train_samples = 120;
    cfg.test_samples = 60;
    cfg.baseline = TrainConfig::new(12);
    cfg.clip_iters = 9;
    cfg.clip_every = 3;
    cfg.deletion.iters = 6;
    cfg.deletion.finetune_iters = 3;
    cfg.deletion.record_every = 6;
    cfg
}

fn smoke(model: ModelKind) {
    let cfg = smoke_budget(GroupScissorConfig::fast(model));
    let (train, test) = cfg.datasets();
    let outcome = run_pipeline_on(&cfg, &train, &test).expect("pipeline must run");
    assert!(!outcome.clip.layer_names.is_empty());
    assert!((0.0..=1.0).contains(&outcome.deletion.final_accuracy));
    assert!(outcome.crossbar_area_ratio() <= 1.0);
    assert!(!outcome.deletion.routing.is_empty());
    // The exported serving plan is the same network frozen (masks
    // pre-applied), so its test accuracy must equal the fine-tuned
    // network's — compiled logits are bitwise-identical to eval forwards.
    let served_accuracy =
        outcome.compiled.evaluate(test.images(), test.labels(), cfg.deletion.eval_batch);
    assert_eq!(
        served_accuracy, outcome.deletion.final_accuracy,
        "compiled serving artifact must reproduce the final accuracy exactly"
    );
}

#[test]
fn fast_lenet_pipeline_smoke() {
    smoke(ModelKind::LeNet);
}

#[test]
fn fast_convnet_pipeline_smoke() {
    smoke(ModelKind::ConvNet);
}
