//! Cross-crate serialization tests: configs, reports and model state all
//! round-trip through serde_json (the format the bench cache uses).

use group_scissor_repro::linalg::Matrix;
use group_scissor_repro::ncs::{AreaReport, CrossbarSpec, LayerPlan, RoutingAnalysis, Tiling};
use group_scissor_repro::pipeline::{GroupScissorConfig, ModelKind};

#[test]
fn matrix_round_trips() {
    let m = Matrix::from_fn(7, 5, |i, j| (i as f32) - 0.5 * j as f32);
    let json = serde_json::to_string(&m).expect("serialize");
    let back: Matrix = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(m, back);
}

#[test]
fn crossbar_spec_and_tiling_round_trip() {
    let spec = CrossbarSpec::default().with_max_size(32, 48).expect("spec");
    let json = serde_json::to_string(&spec).expect("serialize");
    let back: CrossbarSpec = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(spec, back);

    let t = Tiling::plan(800, 36, &CrossbarSpec::default()).expect("plan");
    let json = serde_json::to_string(&t).expect("serialize");
    let back: Tiling = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(t, back);
    assert_eq!(back.mbc_size().to_string(), "50x36");
}

#[test]
fn area_report_round_trips() {
    let report = AreaReport::new(
        vec![LayerPlan::low_rank("fc1", 800, 500, 36), LayerPlan::dense("fc2", 500, 10)],
        &CrossbarSpec::default(),
    );
    let json = serde_json::to_string(&report).expect("serialize");
    let back: AreaReport = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(report, back);
    assert_eq!(back.total_implemented_cells(), 36 * 1300 + 5000);
}

#[test]
fn routing_analysis_round_trips() {
    let t = Tiling::plan(100, 30, &CrossbarSpec::default()).expect("plan");
    let w = Matrix::filled(100, 30, 1.0);
    let a = RoutingAnalysis::analyze("x", &w, &t, 0.0).expect("analyze");
    let json = serde_json::to_string(&a).expect("serialize");
    let back: RoutingAnalysis = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(a, back);
}

#[test]
fn pipeline_config_round_trips() {
    let cfg = GroupScissorConfig::fast(ModelKind::ConvNet);
    let json = serde_json::to_string(&cfg).expect("serialize");
    let back: GroupScissorConfig = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(cfg, back);
}

#[test]
fn state_dict_round_trips_and_reloads() {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let mut net = ModelKind::LeNet.build(&mut rng);
    let state = net.state_dict();
    let json = serde_json::to_string(&state).expect("serialize");
    let back: Vec<(String, Matrix)> = serde_json::from_str(&json).expect("deserialize");
    net.load_state_dict(&back).expect("reload");
    assert_eq!(net.state_dict(), state);
}
