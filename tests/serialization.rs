//! Cross-crate serialization tests: configs, reports and model state all
//! round-trip through serde_json (the format the bench cache uses).
//!
//! The float audit at the bottom pins the `f32 → f64 shortest-repr → f32`
//! path at full state-dict scale: every `f32` is serialized via its exact
//! `f64` widening, so the shortest `f64` representation must narrow back
//! to the identical bit pattern — including subnormals, signed zero and
//! the extremes of the exponent range.

use group_scissor_repro::linalg::Matrix;
use group_scissor_repro::ncs::{AreaReport, CrossbarSpec, LayerPlan, RoutingAnalysis, Tiling};
use group_scissor_repro::pipeline::{GroupScissorConfig, ModelKind};
use proptest::prelude::*;

/// LeNet fc1 — the largest weight matrix a state dict carries.
const STATE_DICT_ROWS: usize = 800;
const STATE_DICT_COLS: usize = 500;

/// Any finite `f32`, uniform over bit patterns (subnormals, signed zeros
/// and huge magnitudes included). Non-finite exponents are defused by
/// clearing one exponent bit, keeping the distribution bit-diverse.
fn finite_f32_from_bits(bits: u32) -> f32 {
    let v = f32::from_bits(bits);
    if v.is_finite() {
        v
    } else {
        // Clear the lowest exponent bit: 0xFF (inf/NaN) becomes 0xFE.
        f32::from_bits(bits & !0x0080_0000)
    }
}

#[test]
fn matrix_round_trips() {
    let m = Matrix::from_fn(7, 5, |i, j| (i as f32) - 0.5 * j as f32);
    let json = serde_json::to_string(&m).expect("serialize");
    let back: Matrix = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(m, back);
}

#[test]
fn crossbar_spec_and_tiling_round_trip() {
    let spec = CrossbarSpec::default().with_max_size(32, 48).expect("spec");
    let json = serde_json::to_string(&spec).expect("serialize");
    let back: CrossbarSpec = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(spec, back);

    let t = Tiling::plan(800, 36, &CrossbarSpec::default()).expect("plan");
    let json = serde_json::to_string(&t).expect("serialize");
    let back: Tiling = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(t, back);
    assert_eq!(back.mbc_size().to_string(), "50x36");
}

#[test]
fn area_report_round_trips() {
    let report = AreaReport::new(
        vec![LayerPlan::low_rank("fc1", 800, 500, 36), LayerPlan::dense("fc2", 500, 10)],
        &CrossbarSpec::default(),
    );
    let json = serde_json::to_string(&report).expect("serialize");
    let back: AreaReport = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(report, back);
    assert_eq!(back.total_implemented_cells(), 36 * 1300 + 5000);
}

#[test]
fn routing_analysis_round_trips() {
    let t = Tiling::plan(100, 30, &CrossbarSpec::default()).expect("plan");
    let w = Matrix::filled(100, 30, 1.0);
    let a = RoutingAnalysis::analyze("x", &w, &t, 0.0).expect("analyze");
    let json = serde_json::to_string(&a).expect("serialize");
    let back: RoutingAnalysis = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(a, back);
}

#[test]
fn pipeline_config_round_trips() {
    let cfg = GroupScissorConfig::fast(ModelKind::ConvNet);
    let json = serde_json::to_string(&cfg).expect("serialize");
    let back: GroupScissorConfig = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(cfg, back);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn full_scale_matrix_survives_json_bit_for_bit(
        seed_bits in proptest::collection::vec(0u32..=u32::MAX, STATE_DICT_ROWS),
    ) {
        // One random bit pattern per row, expanded deterministically to
        // fc1 scale (800×500): generating 400k independent samples per
        // case would swamp generation time without adding bit diversity.
        let m = Matrix::from_fn(STATE_DICT_ROWS, STATE_DICT_COLS, |i, j| {
            let mixed = seed_bits[i]
                .wrapping_mul(0x9e37_79b9)
                .wrapping_add((j as u32).wrapping_mul(0x85eb_ca6b));
            finite_f32_from_bits(mixed ^ (mixed >> 15))
        });
        let json = serde_json::to_string(&m).expect("serialize");
        let back: Matrix = serde_json::from_str(&json).expect("deserialize");
        prop_assert_eq!(m.shape(), back.shape());
        for (a, b) in m.as_slice().iter().zip(back.as_slice()) {
            prop_assert!(
                a.to_bits() == b.to_bits(),
                "bit drift: {a:?} ({:#010x}) → {b:?} ({:#010x})",
                a.to_bits(),
                b.to_bits()
            );
        }
    }
}

#[test]
fn adversarial_float_values_round_trip_at_state_dict_scale() {
    // Every classically troublesome value, tiled to full fc1 size.
    let edge = [
        0.0_f32,
        -0.0,
        f32::MIN_POSITIVE, // smallest normal
        -f32::MIN_POSITIVE,
        f32::from_bits(1),           // smallest subnormal
        f32::from_bits(0x007f_ffff), // largest subnormal
        f32::MAX,
        -f32::MAX,
        f32::EPSILON,
        1.0 / 3.0,
        0.1,
        16_777_217.0, // first integer not exact in f32
        3.402_823e38,
        1.175_494e-38,
        -std::f32::consts::E,
    ];
    let m = Matrix::from_fn(STATE_DICT_ROWS, STATE_DICT_COLS, |i, j| {
        edge[(i * STATE_DICT_COLS + j) % edge.len()]
    });
    let json = serde_json::to_string(&m).expect("serialize");
    let back: Matrix = serde_json::from_str(&json).expect("deserialize");
    let drift = m.as_slice().iter().zip(back.as_slice()).find(|(a, b)| a.to_bits() != b.to_bits());
    assert!(drift.is_none(), "edge value drifted: {drift:?}");
}

#[test]
fn bit_diverse_state_dict_reloads_bit_for_bit() {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(9);
    let mut net = ModelKind::LeNet.build(&mut rng);
    // Overwrite every parameter with bit-diverse values before snapshot.
    for (pi, p) in net.params_mut().into_iter().enumerate() {
        let mut k = 0u32;
        p.value_mut().map_inplace(|_| {
            k = k.wrapping_mul(1_664_525).wrapping_add(1_013_904_223 + pi as u32);
            finite_f32_from_bits(k)
        });
    }
    let state = net.state_dict();
    let json = serde_json::to_string(&state).expect("serialize");
    let back: Vec<(String, Matrix)> = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(state.len(), back.len());
    for ((n1, m1), (n2, m2)) in state.iter().zip(&back) {
        assert_eq!(n1, n2);
        let identical =
            m1.as_slice().iter().zip(m2.as_slice()).all(|(a, b)| a.to_bits() == b.to_bits());
        assert!(identical, "param {n1} drifted through JSON");
    }
}

#[test]
fn state_dict_round_trips_and_reloads() {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let mut net = ModelKind::LeNet.build(&mut rng);
    let state = net.state_dict();
    let json = serde_json::to_string(&state).expect("serialize");
    let back: Vec<(String, Matrix)> = serde_json::from_str(&json).expect("deserialize");
    net.load_state_dict(&back).expect("reload");
    assert_eq!(net.state_dict(), state);
}
