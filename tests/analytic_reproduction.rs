//! Cross-crate integration tests locking the paper's *analytic* results —
//! the numbers that do not depend on (synthetic-data) training:
//! Table 2 parameters, Table 3 crossbar sizes, the 13.62 % / 51.81 %
//! crossbar-area headlines, and the 8.1 % / 52.06 % routing-area headlines.

use group_scissor_repro::ncs::{
    mean_area_fraction, mean_wire_fraction, CrossbarSpec, RoutingAnalysis, Tiling,
};
use group_scissor_repro::pipeline::{area_report_at_ranks, ModelKind};

#[test]
fn table2_parameters_are_defaults() {
    let spec = CrossbarSpec::default();
    assert_eq!(spec.max_rows(), 64);
    assert_eq!(spec.max_cols(), 64);
    assert_eq!(spec.cell_area_f2(), 4.0);
    assert_eq!(spec.wire_pitch_f(), 2.0);
}

#[test]
fn table3_mbc_sizes_lenet() {
    let spec = CrossbarSpec::default();
    // (matrix shape, expected MBC) from Table 3's LeNet row.
    let cases = [
        ((500, 12), "50x12"), // conv2_u
        ((800, 36), "50x36"), // fc1_u
        ((36, 500), "36x50"), // fc1_v
        ((500, 10), "50x10"), // fc_last
    ];
    for ((n, k), expect) in cases {
        let t = Tiling::plan(n, k, &spec).unwrap();
        assert_eq!(t.mbc_size().to_string(), expect, "{n}x{k}");
    }
}

#[test]
fn table3_mbc_sizes_convnet() {
    let spec = CrossbarSpec::default();
    let cases = [
        ((75, 12), "25x12"),   // conv1_u
        ((800, 19), "50x19"),  // conv2_u
        ((800, 22), "50x22"),  // conv3_u
        ((1024, 10), "64x10"), // fc_last
    ];
    for ((n, k), expect) in cases {
        let t = Tiling::plan(n, k, &spec).unwrap();
        assert_eq!(t.mbc_size().to_string(), expect, "{n}x{k}");
    }
}

#[test]
fn paper_small_matrices_fit_single_crossbars() {
    // Table 3 footnote: conv1 (LeNet), conv1_v/conv2_v/conv3_v fit one MBC.
    let spec = CrossbarSpec::default();
    for (n, k) in [(25, 5), (5, 20), (12, 50), (32, 12), (32, 19), (64, 22), (50, 12)] {
        let t = Tiling::plan(n, k, &spec).unwrap();
        assert!(t.is_single_crossbar(), "{n}x{k} should fit one crossbar");
    }
}

#[test]
fn headline_crossbar_area_13_62_and_51_81() {
    let spec = CrossbarSpec::default();
    for (model, expect) in [(ModelKind::LeNet, 13.62), (ModelKind::ConvNet, 51.81)] {
        let ranks: Vec<(String, usize)> =
            model.paper_clipped_ranks().into_iter().map(|(n, k)| (n.to_string(), k)).collect();
        let report = area_report_at_ranks(model, &ranks, &spec);
        let pct = 100.0 * report.total_ratio();
        assert!((pct - expect).abs() < 0.005, "{model}: {pct:.4}% != {expect}%");
    }
}

#[test]
fn paper_one_percent_loss_points() {
    // §4.1: with 1% accuracy loss, LeNet ranks (4, 6, 6) → 3.78% area and
    // ConvNet area 38.14%. The LeNet point is fully determined by the ranks
    // the paper gives, so lock it.
    let spec = CrossbarSpec::default();
    let ranks = vec![("conv1".to_string(), 4), ("conv2".to_string(), 6), ("fc1".to_string(), 6)];
    let report = area_report_at_ranks(ModelKind::LeNet, &ranks, &spec);
    let pct = 100.0 * report.total_ratio();
    assert!((pct - 3.78).abs() < 0.02, "LeNet@1%: {pct:.4}% != 3.78%");
}

#[test]
fn headline_routing_area_8_1_and_52_06() {
    // Table 3's remained-wire percentages → the paper's routing-area means.
    let lenet: Vec<RoutingAnalysis> =
        [475, 248, 67, 180].iter().map(|&w| RoutingAnalysis::from_counts("l", 1000, w)).collect();
    assert!((100.0 * mean_area_fraction(&lenet) - 8.1).abs() < 0.05);

    let convnet: Vec<RoutingAnalysis> =
        [833, 405, 744, 819].iter().map(|&w| RoutingAnalysis::from_counts("c", 1000, w)).collect();
    assert!((100.0 * mean_wire_fraction(&convnet) - 70.03).abs() < 0.05);
    assert!((100.0 * mean_area_fraction(&convnet) - 52.06).abs() < 0.05);
}

#[test]
fn fig8_one_and_a_half_percent_loss_points() {
    // §4.2 / Fig. 8: with 1.5% accuracy loss the ConvNet layer routing
    // areas are 56.25%, 7.64%, 21.44%, 31.64% — wire fractions are their
    // square roots under Eq. (8). Verify the quadratic model is consistent.
    for (area_pct, wire_pct) in [(56.25, 75.0), (7.64, 27.64), (21.44, 46.30), (31.64, 56.25)] {
        let wires = (area_pct / 100.0_f64).sqrt();
        assert!(
            (100.0 * wires - wire_pct).abs() < 0.05,
            "sqrt({area_pct}) = {:.2} != {wire_pct}",
            100.0 * wires
        );
    }
}

#[test]
fn eq2_bounds_for_all_paper_layers() {
    use group_scissor_repro::linalg::max_beneficial_rank;
    // Every rank the paper reports must satisfy Eq. (2) for its layer.
    for model in [ModelKind::LeNet, ModelKind::ConvNet] {
        let shapes = model.layer_shapes();
        for (layer, k) in model.paper_clipped_ranks() {
            let (_, n, m) = *shapes.iter().find(|(l, _, _)| *l == layer).unwrap();
            assert!(k <= max_beneficial_rank(n, m), "{model}/{layer}");
        }
    }
}
