//! Property tests pinning the `parallel` feature's contract: the rayon
//! row-panel matmul and the single-threaded blocked kernel accumulate every
//! output element in the same order, so their results agree far tighter
//! than the 1e-10 tolerance required here (bitwise, in fact).

use group_scissor_repro::linalg::Matrix;
use proptest::prelude::*;

fn matrix_strategy(max_rows: usize, max_cols: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_rows, 1..=max_cols).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-1.0f32..1.0, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data).expect("sized by construction"))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn parallel_and_serial_matmul_agree(
        a in matrix_strategy(40, 64),
        seed in 0u64..1000,
    ) {
        let k = a.cols();
        let b = Matrix::from_fn(k, 33, |i, j| {
            (((i * 31 + j * 17 + seed as usize) % 29) as f32 - 14.0) * 0.07
        });
        let serial = a.matmul_serial(&b);
        let parallel = a.matmul_parallel(&b);
        prop_assert_eq!(serial.shape(), parallel.shape());
        for (s, p) in serial.as_slice().iter().zip(parallel.as_slice()) {
            prop_assert!(
                (*s as f64 - *p as f64).abs() <= 1e-10,
                "serial {} != parallel {}", s, p
            );
        }
    }

    #[test]
    fn dispatching_matmul_agrees_with_serial_above_threshold(seed in 0u64..50) {
        // 128³ = 2·2²⁰ flops crosses PARALLEL_FLOP_THRESHOLD, so `matmul`
        // takes the parallel dispatch path; it must still match the forced
        // serial kernel.
        let n = 128;
        let a = Matrix::from_fn(n, n, |i, j| {
            (((i * 13 + j * 7 + seed as usize) % 23) as f32 - 11.0) * 0.043
        });
        let b = Matrix::from_fn(n, n, |i, j| {
            (((i * 5 + j * 19 + seed as usize) % 17) as f32 - 8.0) * 0.057
        });
        let auto = a.matmul(&b);
        let serial = a.matmul_serial(&b);
        for (x, y) in auto.as_slice().iter().zip(serial.as_slice()) {
            prop_assert!((*x as f64 - *y as f64).abs() <= 1e-10);
        }
    }
}
