//! Property tests pinning the kernel-agreement contract of
//! `scissor_linalg::ops`: the rayon row-panel path, the single-threaded
//! blocked kernel, and the register-tiled (`simd` feature) micro-kernels
//! all accumulate every output element with a single accumulator in
//! ascending reduction order — so their results are **bitwise identical**,
//! not merely close.

use group_scissor_repro::linalg::Matrix;
use proptest::prelude::*;

fn matrix_strategy(max_rows: usize, max_cols: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_rows, 1..=max_cols).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-1.0f32..1.0, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data).expect("sized by construction"))
    })
}

/// Exact bit equality, element by element.
fn assert_bitwise(a: &Matrix, b: &Matrix) -> std::result::Result<(), TestCaseError> {
    prop_assert_eq!(a.shape(), b.shape());
    for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
        prop_assert_eq!(x.to_bits(), y.to_bits(), "{} != {} bitwise", x, y);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn parallel_and_serial_matmul_agree_bitwise(
        a in matrix_strategy(40, 64),
        seed in 0u64..1000,
    ) {
        let k = a.cols();
        let b = Matrix::from_fn(k, 33, |i, j| {
            (((i * 31 + j * 17 + seed as usize) % 29) as f32 - 14.0) * 0.07
        });
        assert_bitwise(&a.matmul_serial(&b), &a.matmul_parallel(&b))?;
    }

    #[test]
    fn microkernel_and_scalar_matmul_agree_bitwise(
        a in matrix_strategy(21, 80),
        seed in 0u64..1000,
    ) {
        // Row counts around MR=4 and widths around NR=8 exercise every
        // remainder path of the register-tiled kernel.
        let k = a.cols();
        let b = Matrix::from_fn(k, 1 + (seed as usize % 21), |i, j| {
            (((i * 13 + j * 23 + seed as usize) % 31) as f32 - 15.0) * 0.053
        });
        assert_bitwise(&a.matmul_serial(&b), &a.matmul_scalar(&b))?;
    }

    #[test]
    fn microkernel_and_scalar_matmul_nt_agree_bitwise(
        a in matrix_strategy(21, 48),
        seed in 0u64..1000,
    ) {
        let k = a.cols();
        let b = Matrix::from_fn(1 + (seed as usize % 19), k, |i, j| {
            (((i * 7 + j * 11 + seed as usize) % 27) as f32 - 13.0) * 0.061
        });
        assert_bitwise(&a.matmul_nt(&b), &a.matmul_nt_scalar(&b))?;
    }

    #[test]
    fn microkernel_and_scalar_matmul_tn_agree_bitwise(
        a in matrix_strategy(70, 21),
        seed in 0u64..1000,
    ) {
        let k = a.rows();
        let b = Matrix::from_fn(k, 1 + (seed as usize % 21), |i, j| {
            (((i * 5 + j * 29 + seed as usize) % 33) as f32 - 16.0) * 0.047
        });
        assert_bitwise(&a.matmul_tn(&b), &a.matmul_tn_scalar(&b))?;
    }

    #[test]
    fn dispatching_matmul_agrees_with_serial_above_threshold(seed in 0u64..50) {
        // 64³ = 4·2¹⁶ flops crosses PARALLEL_FLOP_THRESHOLD, so `matmul`
        // takes the parallel dispatch path; it must still match the forced
        // serial kernel bitwise.
        let n = 64;
        assert!(n * n * n > group_scissor_repro::linalg::PARALLEL_FLOP_THRESHOLD);
        let a = Matrix::from_fn(n, n, |i, j| {
            (((i * 13 + j * 7 + seed as usize) % 23) as f32 - 11.0) * 0.043
        });
        let b = Matrix::from_fn(n, n, |i, j| {
            (((i * 5 + j * 19 + seed as usize) % 17) as f32 - 8.0) * 0.057
        });
        assert_bitwise(&a.matmul(&b), &a.matmul_serial(&b))?;
    }
}
