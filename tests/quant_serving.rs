//! Acceptance tests for the int8 group-quantized serving form end to end:
//! both pipeline presets export an f32 and an int8 plan whose test
//! accuracies agree within a documented bound, and the serving stack
//! (server + router) reports the form it is running.

use std::sync::Arc;

use group_scissor_repro::ncs::INT8_MAGNITUDES;
use group_scissor_repro::nn::ServingForm;
use group_scissor_repro::pipeline::{run_pipeline_on, GroupScissorConfig, ModelKind, TrainConfig};
use group_scissor_repro::router::{ModelConfig, Router};
use group_scissor_repro::serve::{Replica, ServeConfig};

/// Documented accuracy tolerance of int8 group quantization on the smoke
/// presets: symmetric per-group int8 keeps every layer's weights within
/// half a scale step (1/254 of the group max), and on these test sets a
/// logit perturbation of that size flips at most a couple of borderline
/// samples. 60-sample smoke test sets quantize accuracy itself in steps
/// of 1/60 ≈ 1.7 pts, so the bound is 2 flipped samples ≈ 3.4 pts.
const SMOKE_ACCURACY_BOUND: f64 = 2.0 / 60.0 + 1e-9;

/// Shrinks a fast-preset config to smoke-test budgets (mirrors
/// `tests/smoke.rs`).
fn smoke_budget(mut cfg: GroupScissorConfig) -> GroupScissorConfig {
    cfg.train_samples = 120;
    cfg.test_samples = 60;
    cfg.baseline = TrainConfig::new(12);
    cfg.clip_iters = 9;
    cfg.clip_every = 3;
    cfg.deletion.iters = 6;
    cfg.deletion.finetune_iters = 3;
    cfg.deletion.record_every = 6;
    cfg
}

fn check_dual_form_export(model: ModelKind) {
    let cfg = smoke_budget(GroupScissorConfig::fast(model));
    let (train, test) = cfg.datasets();
    let outcome = run_pipeline_on(&cfg, &train, &test).expect("pipeline must run");

    // The f32 export is the bit-equality baseline.
    assert_eq!(outcome.compiled.serving_form(), ServingForm::F32);
    assert_eq!(
        outcome.f32_accuracy, outcome.deletion.final_accuracy,
        "{model}: f32 export must reproduce the final accuracy exactly"
    );

    // The int8 export's group size is the crossbar column count, so the
    // quantization groups line up with the area model's crossbars.
    assert_eq!(
        outcome.compiled_int8.serving_form(),
        ServingForm::Int8 { group_size: cfg.spec.max_cols() }
    );
    assert!(
        outcome.compiled_int8.resident_weight_bytes()
            < outcome.compiled.resident_weight_bytes() / 2,
        "{model}: int8 weights must cut resident bytes at least in half"
    );

    // Accuracy cost of quantization stays within the documented bound.
    let delta = outcome.quant_accuracy_delta().abs();
    assert!(
        delta <= SMOKE_ACCURACY_BOUND,
        "{model}: |f32 {} - int8 {}| = {delta} exceeds the documented bound {SMOKE_ACCURACY_BOUND}",
        outcome.f32_accuracy,
        outcome.int8_accuracy,
    );

    // The crossbar device grid the int8 form assumes is the one the ncs
    // consistency check reasons about (255 levels = 128 magnitudes).
    assert_eq!(INT8_MAGNITUDES, 128);
}

#[test]
fn lenet_smoke_int8_accuracy_delta_is_bounded() {
    check_dual_form_export(ModelKind::LeNet);
}

#[test]
fn convnet_smoke_int8_accuracy_delta_is_bounded() {
    check_dual_form_export(ModelKind::ConvNet);
}

#[test]
fn server_and_router_surface_the_serving_form() {
    let cfg = smoke_budget(GroupScissorConfig::fast(ModelKind::LeNet));
    let (train, test) = cfg.datasets();
    let outcome = run_pipeline_on(&cfg, &train, &test).expect("pipeline must run");

    // Server level: a replica reports its plan's form; the plan is shared
    // (one Arc) between the replica and the router registration below.
    let int8_plan = Arc::new(outcome.compiled_int8);
    let mut replica = Replica::start(Arc::clone(&int8_plan), ServeConfig::default());
    assert_eq!(replica.serving_form(), ServingForm::Int8 { group_size: cfg.spec.max_cols() });
    let sample = test.images().gather(&[0]);
    let logits = replica.submit(&sample).expect("submit").wait();
    assert_eq!(logits.len(), 10);
    replica.shutdown();

    // Router: per-model stats carry each plan's form.
    let router = Router::new();
    router.register("lenet-f32", outcome.compiled, ModelConfig::default()).expect("register f32");
    router
        .register_shared("lenet-int8", int8_plan, ModelConfig::with_replicas(2))
        .expect("register int8");
    let f32_stats = router.model_stats("lenet-f32").expect("f32 stats");
    assert_eq!(f32_stats.form, ServingForm::F32);
    let int8_stats = router.model_stats("lenet-int8").expect("int8 stats");
    assert_eq!(int8_stats.form, ServingForm::Int8 { group_size: cfg.spec.max_cols() });

    // Both forms answer through the router front door.
    for model in ["lenet-f32", "lenet-int8"] {
        let logits = router.submit(model, &sample).expect("submit").wait();
        assert_eq!(logits.len(), 10, "{model} must answer");
    }
    router.shutdown();
}
