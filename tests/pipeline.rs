//! End-to-end pipeline integration test: baseline → rank clipping →
//! group connection deletion → hardware reports, across all crates.
//!
//! Budgets scale with the build profile so `cargo test` stays tolerable in
//! debug while `cargo test --release` exercises a more realistic run.

use group_scissor_repro::pipeline::{run_pipeline_on, GroupScissorConfig, ModelKind, TrainConfig};

fn tiny_lenet_config() -> GroupScissorConfig {
    let mut cfg = GroupScissorConfig::fast(ModelKind::LeNet);
    let (baseline, clip, del, ft, samples) =
        if cfg!(debug_assertions) { (20, 30, 20, 10, 200) } else { (120, 150, 120, 60, 800) };
    cfg.train_samples = samples;
    cfg.test_samples = 120;
    cfg.baseline = TrainConfig::new(baseline);
    cfg.baseline.sgd.lr = 0.02;
    cfg.clip_iters = clip;
    cfg.clip_every = clip / 3;
    cfg.deletion.iters = del;
    cfg.deletion.finetune_iters = ft;
    cfg.deletion.record_every = del;
    cfg.lambda = 0.01;
    cfg
}

#[test]
fn lenet_pipeline_runs_end_to_end() {
    let cfg = tiny_lenet_config();
    let (train, test) = cfg.datasets();
    let outcome = run_pipeline_on(&cfg, &train, &test).expect("pipeline must run");

    // Stage consistency -----------------------------------------------------
    // Clip trace exists and layer ordering matches the config.
    assert_eq!(outcome.clip.layer_names, vec!["conv1", "conv2", "fc1"]);
    assert_eq!(outcome.clip.full_ranks, vec![20, 50, 500]);
    assert!(!outcome.clip.trace.is_empty());

    // Ranks never grow during clipping.
    for pair in outcome.clip.trace.windows(2) {
        for (a, b) in pair[0].ranks.iter().zip(&pair[1].ranks) {
            assert!(b <= a, "rank grew during clipping");
        }
    }

    // Ranks actually shrank from full rank (fc1 at 500 always clips hard).
    assert!(
        outcome.clip.final_ranks[2] < 500,
        "fc1 rank did not clip: {:?}",
        outcome.clip.final_ranks
    );

    // Area report uses the clipped ranks and improves on dense.
    assert!(outcome.crossbar_area_ratio() < 1.0);
    assert_eq!(outcome.area.layers().len(), 4);

    // Deletion produced routing analyses for every regularized matrix and
    // the quadratic wire→area law holds.
    assert!(!outcome.deletion.routing.is_empty());
    for r in &outcome.deletion.routing {
        let w = r.remained_wire_fraction();
        assert!((r.remained_area_fraction() - w * w).abs() < 1e-12);
    }

    // Accuracies are probabilities and the baseline learned something.
    for acc in [
        outcome.baseline.final_accuracy,
        outcome.direct_lra_accuracy,
        outcome.clip.final_accuracy,
        outcome.deletion.final_accuracy,
    ] {
        assert!((0.0..=1.0).contains(&acc));
    }
    assert!(outcome.baseline.final_accuracy > 0.2, "baseline failed to learn");
}

#[test]
fn pipeline_is_deterministic_for_a_seed() {
    let cfg = {
        let mut c = tiny_lenet_config();
        // Shrink further: determinism only needs a few iterations.
        c.baseline = TrainConfig::new(8);
        c.clip_iters = 9;
        c.clip_every = 3;
        c.deletion.iters = 6;
        c.deletion.finetune_iters = 3;
        c.deletion.record_every = 6;
        c.train_samples = 100;
        c.test_samples = 50;
        c
    };
    let (train, test) = cfg.datasets();
    let a = run_pipeline_on(&cfg, &train, &test).expect("run a");
    let b = run_pipeline_on(&cfg, &train, &test).expect("run b");
    assert_eq!(a.baseline.final_accuracy, b.baseline.final_accuracy);
    assert_eq!(a.clip.final_ranks, b.clip.final_ranks);
    assert_eq!(a.deletion.final_accuracy, b.deletion.final_accuracy);
    assert_eq!(a.deletion.mean_wire_fraction(), b.deletion.mean_wire_fraction());
}
