//! Acceptance tests for the training/serving split at model scale:
//! `CompiledNet` logits must be **bitwise identical** to
//! `Network::forward(.., Phase::Eval)` on LeNet and ConvNet — dense,
//! rank-clipped (low-rank) and group-deleted (masked) variants — and the
//! batched server must preserve that identity end to end.

use std::sync::Arc;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::SeedableRng;

use group_scissor_repro::data::SynthOptions;
use group_scissor_repro::lra::{direct_lra, LraMethod};
use group_scissor_repro::nn::{InferScratch, Phase, Tensor4};
use group_scissor_repro::pipeline::ModelKind;
use group_scissor_repro::serve::{ServeConfig, Server};

fn assert_bitwise_identical(model: ModelKind, net: &mut group_scissor_repro::nn::Network) {
    let plan = net.compile().expect("compile");
    assert_eq!(plan.output_shape(), net.output_shape());
    let data = model.dataset(12, 3, SynthOptions::default());
    let mut scratch = InferScratch::new();
    for batch in [1usize, 5, 12] {
        let idx: Vec<usize> = (0..batch).collect();
        let x = data.images().gather(&idx);
        let expect = net.forward(&x, Phase::Eval);
        let got = plan.infer_into(&x, &mut scratch);
        assert_eq!(got.shape().0, batch);
        let identical =
            got.as_slice().iter().zip(expect.as_slice()).all(|(a, b)| a.to_bits() == b.to_bits());
        assert!(identical, "{model}: compiled logits must be bitwise identical at batch {batch}");
    }
}

#[test]
fn lenet_compiled_matches_eval_bitwise_dense_and_clipped() {
    let model = ModelKind::LeNet;
    let mut rng = StdRng::seed_from_u64(17);
    let mut net = model.build(&mut rng);
    assert_bitwise_identical(model, &mut net);
    // Rank-clip to the paper's Table 1 ranks: both low-rank step kinds.
    let ranks: Vec<(String, usize)> =
        model.paper_clipped_ranks().into_iter().map(|(n, k)| (n.to_string(), k)).collect();
    direct_lra(&mut net, &ranks, LraMethod::Pca).expect("clip");
    assert_bitwise_identical(model, &mut net);
}

#[test]
fn convnet_compiled_matches_eval_bitwise_dense_and_clipped() {
    let model = ModelKind::ConvNet;
    let mut rng = StdRng::seed_from_u64(19);
    let mut net = model.build(&mut rng);
    assert_bitwise_identical(model, &mut net);
    let ranks: Vec<(String, usize)> =
        model.paper_clipped_ranks().into_iter().map(|(n, k)| (n.to_string(), k)).collect();
    direct_lra(&mut net, &ranks, LraMethod::Pca).expect("clip");
    assert_bitwise_identical(model, &mut net);
}

#[test]
fn deleted_weights_survive_compilation_and_masking() {
    use group_scissor_repro::prune::MaskSet;
    let model = ModelKind::LeNet;
    let mut rng = StdRng::seed_from_u64(23);
    let mut net = model.build(&mut rng);
    // Emulate group deletion: zero a stripe of conv2's weight, capture the
    // pattern, compile with the mask pre-applied.
    {
        let p = net.param_mut("conv2.w").expect("conv2.w");
        for j in 0..p.value().cols() {
            for i in 0..40 {
                p.value_mut()[(i, j)] = 0.0;
            }
        }
    }
    let masks = MaskSet::capture_nonzero(&net, &["conv2.w".into()]).expect("capture");
    let mut plan = net.compile().expect("compile");
    masks.apply_to_compiled(&mut plan).expect("mask");
    let data = model.dataset(6, 5, SynthOptions::default());
    let x = data.images().gather(&[0, 1, 2, 3, 4, 5]);
    let expect = net.forward(&x, Phase::Eval);
    assert_eq!(plan.infer(&x).as_slice(), expect.as_slice());
}

#[test]
fn served_lenet_logits_are_bitwise_identical_to_eval() {
    let model = ModelKind::LeNet;
    let mut rng = StdRng::seed_from_u64(29);
    let mut net = model.build(&mut rng);
    let ranks: Vec<(String, usize)> =
        model.paper_clipped_ranks().into_iter().map(|(n, k)| (n.to_string(), k)).collect();
    direct_lra(&mut net, &ranks, LraMethod::Pca).expect("clip");

    let n = 24;
    let data = model.dataset(n, 7, SynthOptions::default());
    let images = data.images().clone();
    let idx: Vec<usize> = (0..n).collect();
    let expect = net.forward(&images.gather(&idx), Phase::Eval);

    let server = Arc::new(Server::start(
        net.compile().expect("compile"),
        ServeConfig { max_batch: 8, max_wait: Duration::from_millis(1), ..ServeConfig::default() },
    ));
    let handles: Vec<_> = (0..4)
        .map(|t| {
            let server = Arc::clone(&server);
            let images = images.clone();
            std::thread::spawn(move || {
                (t..n)
                    .step_by(4)
                    .map(|s| (s, server.submit(&images.gather(&[s])).expect("submit")))
                    .collect::<Vec<(usize, Vec<f32>)>>()
            })
        })
        .collect();
    for h in handles {
        for (s, got) in h.join().expect("caller") {
            let want = expect.sample(s);
            let identical = got.iter().zip(want).all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(identical, "sample {s}: served logits must be bitwise identical");
        }
    }
    assert_eq!(server.stats().requests as usize, n);
}

#[test]
fn tiled_inference_is_bitwise_identical_at_model_scale() {
    use group_scissor_repro::nn::TileConfig;

    // The tentpole acceptance shape: at LeNet/ConvNet scale (rank-clipped,
    // so all six step kinds run at real geometry), every tile size —
    // dividing the batch or not — and the auto-planned tile reproduce the
    // untiled batch logits bit for bit.
    for model in [ModelKind::LeNet, ModelKind::ConvNet] {
        let mut rng = StdRng::seed_from_u64(37);
        let mut net = model.build(&mut rng);
        let ranks: Vec<(String, usize)> =
            model.paper_clipped_ranks().into_iter().map(|(n, k)| (n.to_string(), k)).collect();
        direct_lra(&mut net, &ranks, LraMethod::Pca).expect("clip");
        let mut plan = net.compile().expect("compile");

        let batch = 12;
        let data = model.dataset(batch, 3, SynthOptions::default());
        let x = data.images().clone();

        plan.set_tile_config(TileConfig::untiled());
        let mut scratch = InferScratch::new();
        let expect = plan.infer_into(&x, &mut scratch).as_slice().to_vec();

        let auto_tile = {
            plan.set_tile_config(TileConfig::auto());
            plan.plan_tile(batch)
        };
        for (label, cfg) in [
            ("tile 1", TileConfig::fixed(1)),
            ("tile 3", TileConfig::fixed(3)),
            ("tile 4", TileConfig::fixed(4)),
            ("tile 5", TileConfig::fixed(5)),
            ("tile 8", TileConfig::fixed(8)),
            ("tile 12", TileConfig::fixed(12)),
            ("auto", TileConfig::auto()),
        ] {
            plan.set_tile_config(cfg);
            let mut scratch = plan.warm_scratch(batch);
            let got = plan.infer_into(&x, &mut scratch);
            let identical =
                got.as_slice().iter().zip(&expect).all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(
                identical,
                "{model}: {label} (auto plans {auto_tile}) must match the untiled pass bitwise"
            );
        }
    }
}

#[test]
fn compiled_plan_rejects_unknown_layer_types() {
    use group_scissor_repro::nn::layer::{InferLayer, Layer};
    use group_scissor_repro::nn::NnError;

    struct Mystery;
    impl InferLayer for Mystery {
        fn name(&self) -> &str {
            "mystery"
        }
        fn infer(&self, input: &Tensor4) -> Tensor4 {
            input.clone()
        }
        fn output_shape(&self, input: (usize, usize, usize)) -> (usize, usize, usize) {
            input
        }
    }
    impl Layer for Mystery {
        fn forward_train(&mut self, input: &Tensor4) -> Tensor4 {
            input.clone()
        }
        fn backward(&mut self, grad: &Tensor4) -> Tensor4 {
            grad.clone()
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    let mut net = group_scissor_repro::nn::Network::new((1, 2, 2));
    net.push(Box::new(Mystery));
    assert!(matches!(net.compile(), Err(NnError::UnsupportedLayer { .. })));
}
